package heuristics

import (
	"context"
	"math"
	"time"

	"netrecovery/internal/flow"
	"netrecovery/internal/graph"
	"netrecovery/internal/scenario"
)

// SRTName is the figure label of the shortest-path heuristic.
const SRTName = "SRT"

// SRT is the Shortest Path Heuristic of §VI-B: demands are processed in
// decreasing order of flow, and for each demand the first shortest paths are
// repaired until the sub-graph they form can carry the demand *considered in
// isolation*. Because demands are treated independently, the repaired links
// may be insufficient to carry every flow simultaneously and SRT can lose
// demand (Fig. 4(d), 5(b), 9(b)); it is however very cheap and repairs few
// elements.
type SRT struct{}

var _ Solver = (*SRT)(nil)

// Name implements Solver.
func (SRT) Name() string { return SRTName }

// Solve implements Solver.
func (SRT) Solve(ctx context.Context, s *scenario.Scenario) (*scenario.Plan, error) {
	start := time.Now()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	plan := scenario.NewPlan(SRTName)
	plan.TotalDemand = s.Demand.TotalFlow()

	// Length metric: repair-cost-aware, as for ISP's static variant, so that
	// "shortest" prefers cheap working capacity.
	length := func(e graph.Edge) float64 {
		if e.Capacity <= 0 {
			return math.Inf(1)
		}
		l := 1.0
		if s.BrokenEdges[e.ID] {
			l += e.RepairCost
		}
		if s.BrokenNodes[e.From] {
			l += s.Supply.Node(e.From).RepairCost / 2
		}
		if s.BrokenNodes[e.To] {
			l += s.Supply.Node(e.To).RepairCost / 2
		}
		return l / e.Capacity
	}

	// Repair the shortest-path set S_i of each demand, in decreasing flow
	// order, so that max flow over S_i covers d_i in isolation.
	for _, p := range s.Demand.SortedByFlowDesc() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		paths, _ := s.Supply.ShortestPathSet(p.Source, p.Target, p.Flow, length, nil)
		for _, wp := range paths {
			for _, v := range wp.Path.Nodes {
				if s.BrokenNodes[v] {
					plan.RepairedNodes[v] = true
				}
			}
			for _, eid := range wp.Path.Edges {
				if s.BrokenEdges[eid] {
					plan.RepairedEdges[eid] = true
				}
			}
		}
		if s.BrokenNodes[p.Source] {
			plan.RepairedNodes[p.Source] = true
		}
		if s.BrokenNodes[p.Target] {
			plan.RepairedNodes[p.Target] = true
		}
	}

	// Measure the demand the repaired network can actually carry, jointly.
	fillRoutedDemand(s, plan)
	plan.Runtime = time.Since(start)
	return plan, nil
}

// fillRoutedDemand routes as much of the scenario demand as possible on the
// network formed by working plus repaired elements, filling the plan's
// Routing and SatisfiedDemand. It routes greedily demand by demand (largest
// first), which matches how SRT and GRD-COM commit capacity.
func fillRoutedDemand(s *scenario.Scenario, plan *scenario.Plan) {
	excludedNodes := make(map[graph.NodeID]bool)
	for v := range s.BrokenNodes {
		if !plan.RepairedNodes[v] {
			excludedNodes[v] = true
		}
	}
	excludedEdges := make(map[graph.EdgeID]bool)
	for e := range s.BrokenEdges {
		if !plan.RepairedEdges[e] {
			excludedEdges[e] = true
		}
	}
	in := &flow.Instance{
		Graph:         s.Supply,
		ExcludedNodes: excludedNodes,
		ExcludedEdges: excludedEdges,
	}
	residual := make(map[graph.EdgeID]float64, s.Supply.NumEdges())
	for i := 0; i < s.Supply.NumEdges(); i++ {
		id := graph.EdgeID(i)
		residual[id] = in.Capacity(id)
	}

	satisfied := 0.0
	for _, p := range s.Demand.SortedByFlowDesc() {
		value, assignment := s.Supply.MaxFlowWithAssignment(p.Source, p.Target, residual)
		routed := math.Min(value, p.Flow)
		if routed <= 1e-9 {
			continue
		}
		scale := routed / value
		for eid, f := range assignment {
			used := f * scale
			if math.Abs(used) <= 1e-9 {
				continue
			}
			plan.Routing.AddFlow(p.ID, eid, used)
			residual[eid] -= math.Abs(used)
			if residual[eid] < 0 {
				residual[eid] = 0
			}
		}
		satisfied += routed
	}
	plan.SatisfiedDemand = satisfied
}
