package heuristics

import (
	"context"
	"errors"
	"testing"

	"netrecovery/internal/degrade"
	"netrecovery/internal/faultinject"
	"netrecovery/internal/scenario"
)

type panicky struct{}

func (panicky) Name() string { return "PANICKY" }
func (panicky) Solve(context.Context, *scenario.Scenario) (*scenario.Plan, error) {
	panic("solver bug")
}

func TestGuardConvertsPanic(t *testing.T) {
	s := Guard(panicky{})
	if s.Name() != "PANICKY" {
		t.Fatalf("Name = %q", s.Name())
	}
	_, err := s.Solve(context.Background(), diamondScenario(t, 4))
	if !degrade.IsPanic(err) {
		t.Fatalf("err = %v, want PanicError", err)
	}
	var pe *degrade.PanicError
	if errors.As(err, &pe); pe.Op != "solver:PANICKY" {
		t.Fatalf("Op = %q", pe.Op)
	}
}

func TestGuardIdempotentAndUnwrap(t *testing.T) {
	inner := panicky{}
	g := Guard(inner)
	if Guard(g) != g {
		t.Fatal("Guard must not double-wrap")
	}
	if Unwrap(g) != Solver(inner) {
		t.Fatal("Unwrap must return the inner solver")
	}
	if Unwrap(inner) != Solver(inner) {
		t.Fatal("Unwrap of an unwrapped solver is the solver")
	}
}

func TestNewReturnsGuardedSolver(t *testing.T) {
	faultinject.Arm(faultinject.Profile{Seed: 1, Points: map[faultinject.Point]faultinject.Spec{
		faultinject.PointSolver: {ErrorRate: 1},
	}})
	defer faultinject.Disarm()

	s, err := New("ISP", Params{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Solve(context.Background(), diamondScenario(t, 4))
	var ie *faultinject.InjectedError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want an injected error through the registry solver", err)
	}

	// Disarmed, the same solver solves normally.
	faultinject.Disarm()
	plan, err := s.Solve(context.Background(), diamondScenario(t, 4))
	if err != nil || plan == nil {
		t.Fatalf("post-disarm solve: plan=%v err=%v", plan, err)
	}
}

func TestSessionSolveGuarded(t *testing.T) {
	faultinject.Arm(faultinject.Profile{Seed: 1, Points: map[faultinject.Point]faultinject.Spec{
		faultinject.PointSolver: {ErrorRate: 1},
	}})
	defer faultinject.Disarm()

	sess := NewISPSession(Params{Fast: true})
	_, err := sess.Solve(context.Background(), diamondScenario(t, 4))
	var ie *faultinject.InjectedError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want an injected error through the warm session", err)
	}

	faultinject.Disarm()
	plan, err := sess.Solve(context.Background(), diamondScenario(t, 4))
	if err != nil || plan == nil {
		t.Fatalf("post-disarm session solve: plan=%v err=%v", plan, err)
	}
}
