package heuristics

import (
	"context"
	"time"

	"netrecovery/internal/flow"
	"netrecovery/internal/scenario"
)

// AllName is the figure label of the repair-everything baseline.
const AllName = "ALL"

// All is the trivial baseline that repairs every broken element (the "ALL"
// line of the figures). It then routes the demand on the fully restored
// network; any residual demand loss therefore reflects a demand that exceeds
// the network's capacity altogether.
type All struct{}

var _ Solver = (*All)(nil)

// Name implements Solver.
func (All) Name() string { return AllName }

// Solve implements Solver.
func (All) Solve(ctx context.Context, s *scenario.Scenario) (*scenario.Plan, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	plan := scenario.NewPlan(AllName)
	plan.TotalDemand = s.Demand.TotalFlow()
	for v := range s.BrokenNodes {
		plan.RepairedNodes[v] = true
	}
	for e := range s.BrokenEdges {
		plan.RepairedEdges[e] = true
	}

	// The routing pass is the expensive part, so honour cancellation before
	// each of its phases (the individual flow computations are atomic).
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	in := &flow.Instance{Graph: s.Supply, Demands: s.Demand.Active()}
	res := flow.CheckRoutability(in, flow.Options{Mode: flow.ModeAuto})
	if res.Routable && res.Routing != nil {
		plan.Routing = res.Routing
		plan.SatisfiedDemand = plan.TotalDemand
	} else {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		fillRoutedDemand(s, plan)
	}
	plan.Runtime = time.Since(start)
	return plan, nil
}
