package heuristics

import (
	"context"
	"fmt"
	"math"
	"time"

	"netrecovery/internal/core"
	"netrecovery/internal/demand"
	"netrecovery/internal/graph"
	"netrecovery/internal/lp"
	"netrecovery/internal/milp"
	"netrecovery/internal/scenario"
)

// OptName is the figure label of the exact MILP solution.
const OptName = "OPT"

// Opt solves the MinR MILP (problem (1)) with branch and bound: binary
// repair decisions for every broken node and edge, continuous per-demand
// flow variables, capacity/activation/conservation constraints, minimising
// total repair cost.
//
// The paper solves this model with Gurobi and reports runtimes up to ~27
// hours (Fig. 7a); this implementation uses the repository's own
// branch-and-bound solver with configurable node and time limits, warm
// started with ISP's solution so that the incumbent is never worse than ISP.
// When the limits are hit before the gap closes, the plan carries
// Optimal=false and the best lower bound in Bound.
type Opt struct {
	// MaxNodes / TimeLimit bound the branch-and-bound search. Zeroes mean
	// 4000 nodes and 120 seconds.
	MaxNodes  int
	TimeLimit time.Duration
	// Workers is the number of branch-and-bound worker goroutines solving
	// LP relaxations concurrently (0 = GOMAXPROCS, negative = 1). The
	// resulting plan is identical for every worker count; see milp.Options.
	Workers int
	// DisableWarmStart turns off the ISP warm start (used by tests to
	// exercise the cold-start path).
	DisableWarmStart bool
	// Progress, when set, receives EventIncumbent / EventBound events from
	// the branch-and-bound search.
	Progress ProgressFunc
	// OnStats, when set, receives the search's milp.Stats after each solve.
	OnStats StatsFunc
}

var _ Solver = (*Opt)(nil)

// Name implements Solver.
func (Opt) Name() string { return OptName }

// optModel carries the variable layout of the MILP so the solution can be
// decoded back into a plan.
type optModel struct {
	problem   *lp.Problem
	binaries  []int
	nodeVar   map[graph.NodeID]int
	edgeVar   map[graph.EdgeID]int
	flowVar   map[optArc]int
	demands   []demand.Pair
	totalCost float64
}

type optArc struct {
	pair    int
	edge    graph.EdgeID
	forward bool
}

// Solve implements Solver.
func (o *Opt) Solve(ctx context.Context, s *scenario.Scenario) (*scenario.Plan, error) {
	start := time.Now()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	maxNodes := o.MaxNodes
	if maxNodes == 0 {
		maxNodes = 4000
	}
	timeLimit := o.TimeLimit
	if timeLimit == 0 {
		timeLimit = 120 * time.Second
	}

	plan := scenario.NewPlan(OptName)
	plan.TotalDemand = s.Demand.TotalFlow()
	if len(s.Demand.Active()) == 0 {
		plan.SatisfiedDemand = 0
		plan.Optimal = true
		plan.Runtime = time.Since(start)
		return plan, nil
	}

	model := buildOptModel(s)

	opts := milp.Options{MaxNodes: maxNodes, TimeLimit: timeLimit, Workers: o.Workers}
	if o.Progress != nil {
		progress := o.Progress
		opts.Progress = func(incumbent, bound float64, nodes int, improved bool) {
			kind := EventBound
			if improved {
				kind = EventIncumbent
			}
			progress(ProgressEvent{
				Solver:    OptName,
				Kind:      kind,
				Incumbent: incumbent,
				Bound:     bound,
				Nodes:     nodes,
			})
		}
	}
	var warmPlan *scenario.Plan
	if !o.DisableWarmStart {
		// The warm start only needs a feasible incumbent quickly, so ISP runs
		// in its greedy split mode here regardless of how the caller
		// configures the stand-alone ISP solver.
		warmSolver := &ISPSolver{Options: core.FastOptions()}
		if wp, werr := warmSolver.Solve(ctx, s); werr == nil && wp.SatisfactionRatio() >= 1-1e-9 {
			// Only the warm-start objective participates in pruning; the
			// binary assignment itself is recovered from warmPlan if the
			// search never improves on it.
			warmPlan = wp
			opts.WarmStart = make([]float64, len(model.binaries))
			opts.WarmStartObjective = wp.RepairCost(s)
		}
	}

	sol := milp.Solve(ctx, milp.Problem{LP: model.problem, Binary: model.binaries}, opts)
	plan.Runtime = time.Since(start)
	if o.OnStats != nil && sol.Stats != nil {
		o.OnStats(ctx, SolveStats{Solver: OptName, MILP: sol.Stats})
	}
	// A fired context trumps whatever partial result the search produced: the
	// caller asked the solver to stop, so report the cancellation.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("opt: %w", err)
	}

	switch sol.Status {
	case milp.StatusOptimal, milp.StatusFeasible:
		if sol.Values == nil {
			// The warm start was never improved upon: fall back to the warm
			// plan itself (relabelled), which is feasible by construction.
			if warmPlan == nil {
				return nil, fmt.Errorf("opt: solver returned no assignment")
			}
			plan.RepairedNodes = warmPlan.RepairedNodes
			plan.RepairedEdges = warmPlan.RepairedEdges
			plan.Routing = warmPlan.Routing
			plan.SatisfiedDemand = warmPlan.SatisfiedDemand
			plan.Optimal = sol.Status == milp.StatusOptimal
			plan.Bound = sol.Bound
			plan.Notes = "incumbent provided by ISP warm start"
			return plan, nil
		}
		decodeOptSolution(s, model, sol.Values, plan)
		plan.Optimal = sol.Status == milp.StatusOptimal
		plan.Bound = sol.Bound
		return plan, nil
	case milp.StatusInfeasible:
		// The demand cannot be carried even by the fully repaired network:
		// repair everything and route what fits, mirroring how the paper
		// treats over-subscribed instances.
		for v := range s.BrokenNodes {
			plan.RepairedNodes[v] = true
		}
		for e := range s.BrokenEdges {
			plan.RepairedEdges[e] = true
		}
		fillRoutedDemand(s, plan)
		plan.Notes = "demand exceeds full network capacity; repaired everything"
		plan.Runtime = time.Since(start)
		return plan, nil
	default:
		if warmPlan != nil {
			plan.RepairedNodes = warmPlan.RepairedNodes
			plan.RepairedEdges = warmPlan.RepairedEdges
			plan.Routing = warmPlan.Routing
			plan.SatisfiedDemand = warmPlan.SatisfiedDemand
			plan.Bound = sol.Bound
			plan.Notes = "search limit hit before any incumbent; using ISP warm start"
			return plan, nil
		}
		return nil, fmt.Errorf("opt: branch and bound ended with status %v", sol.Status)
	}
}

// OptMILP builds the MinR MILP of problem (1) for the scenario and returns
// it in solver-ready form. It exists for the benchmark harnesses (the
// BenchmarkOPT_* suite and cmd/nrbench's trajectory mode), which measure raw
// branch-and-bound node throughput without the plan-decoding layer on top.
func OptMILP(s *scenario.Scenario) milp.Problem {
	model := buildOptModel(s)
	return milp.Problem{LP: model.problem, Binary: model.binaries}
}

// buildOptModel constructs the MILP of problem (1). Binary variables exist
// only for broken elements; intact elements are implicitly usable. Broken
// elements are activated by their flow through big-M rows whose M is the
// exact capacity bound, so the formulation is equivalent to (1).
func buildOptModel(s *scenario.Scenario) *optModel {
	prob := lp.New(lp.Minimize)
	model := &optModel{
		problem: prob,
		nodeVar: make(map[graph.NodeID]int),
		edgeVar: make(map[graph.EdgeID]int),
		flowVar: make(map[optArc]int),
		demands: s.Demand.Active(),
	}

	// Iterate the broken sets in sorted ID order, never map order: the
	// variable layout (and with it the branch order and every LP pivot
	// sequence) must be identical across runs for OPT's plans, bounds and
	// node counts to be reproducible.
	for _, v := range s.SortedBrokenNodes() {
		idx := prob.AddBoundedVariable(s.Supply.Node(v).RepairCost, 1, fmt.Sprintf("delta_v_%d", v))
		model.nodeVar[v] = idx
		model.binaries = append(model.binaries, idx)
		model.totalCost += s.Supply.Node(v).RepairCost
	}
	for _, e := range s.SortedBrokenEdges() {
		idx := prob.AddBoundedVariable(s.Supply.Edge(e).RepairCost, 1, fmt.Sprintf("delta_e_%d", e))
		model.edgeVar[e] = idx
		model.binaries = append(model.binaries, idx)
		model.totalCost += s.Supply.Edge(e).RepairCost
	}
	for pi := range model.demands {
		for i := 0; i < s.Supply.NumEdges(); i++ {
			eid := graph.EdgeID(i)
			fwd := prob.AddVariable(0, "")
			bwd := prob.AddVariable(0, "")
			model.flowVar[optArc{pi, eid, true}] = fwd
			model.flowVar[optArc{pi, eid, false}] = bwd
		}
	}

	// Capacity / edge-activation rows (constraint 1(b)).
	for i := 0; i < s.Supply.NumEdges(); i++ {
		eid := graph.EdgeID(i)
		e := s.Supply.Edge(eid)
		terms := make([]lp.Term, 0, 2*len(model.demands)+1)
		for pi := range model.demands {
			terms = append(terms,
				lp.Term{Var: model.flowVar[optArc{pi, eid, true}], Coef: 1},
				lp.Term{Var: model.flowVar[optArc{pi, eid, false}], Coef: 1},
			)
		}
		if dv, broken := model.edgeVar[eid]; broken {
			terms = append(terms, lp.Term{Var: dv, Coef: -e.Capacity})
			_ = prob.AddConstraint(terms, lp.LessEq, 0, fmt.Sprintf("capb_%d", eid))
		} else {
			_ = prob.AddConstraint(terms, lp.LessEq, e.Capacity, fmt.Sprintf("cap_%d", eid))
		}
	}

	// Node-activation rows (constraint 1(c), expressed through flow): the
	// total flow incident to a broken node cannot exceed its incident
	// capacity unless the node is repaired. Sorted order again: the row
	// layout is part of the deterministic pivot sequence.
	for _, v := range s.SortedBrokenNodes() {
		dv := model.nodeVar[v]
		incident := s.Supply.IncidentEdges(v)
		bigM := 0.0
		terms := make([]lp.Term, 0, 2*len(model.demands)*len(incident)+1)
		for _, eid := range incident {
			bigM += s.Supply.Edge(eid).Capacity
			for pi := range model.demands {
				terms = append(terms,
					lp.Term{Var: model.flowVar[optArc{pi, eid, true}], Coef: 1},
					lp.Term{Var: model.flowVar[optArc{pi, eid, false}], Coef: 1},
				)
			}
		}
		if len(terms) == 0 {
			continue
		}
		terms = append(terms, lp.Term{Var: dv, Coef: -bigM})
		_ = prob.AddConstraint(terms, lp.LessEq, 0, fmt.Sprintf("act_%d", v))
	}

	// Flow-conservation rows (constraint 1(d)).
	for pi, d := range model.demands {
		for v := 0; v < s.Supply.NumNodes(); v++ {
			node := graph.NodeID(v)
			incident := s.Supply.IncidentEdges(node)
			terms := make([]lp.Term, 0, 2*len(incident))
			for _, eid := range incident {
				e := s.Supply.Edge(eid)
				outVar := model.flowVar[optArc{pi, eid, e.From == node}]
				inVar := model.flowVar[optArc{pi, eid, e.From != node}]
				terms = append(terms,
					lp.Term{Var: outVar, Coef: 1},
					lp.Term{Var: inVar, Coef: -1},
				)
			}
			rhs := 0.0
			switch node {
			case d.Source:
				rhs = d.Flow
			case d.Target:
				rhs = -d.Flow
			}
			if len(terms) == 0 {
				continue
			}
			_ = prob.AddConstraint(terms, lp.Equal, rhs, fmt.Sprintf("cons_%d_%d", pi, v))
		}
	}
	return model
}

// decodeOptSolution converts a MILP assignment into the plan's repaired sets
// and routing.
func decodeOptSolution(s *scenario.Scenario, model *optModel, values []float64, plan *scenario.Plan) {
	value := func(idx int) float64 {
		if idx < 0 || idx >= len(values) {
			return 0
		}
		return values[idx]
	}
	for v, idx := range model.nodeVar {
		if value(idx) > 0.5 {
			plan.RepairedNodes[v] = true
		}
	}
	for e, idx := range model.edgeVar {
		if value(idx) > 0.5 {
			plan.RepairedEdges[e] = true
		}
	}
	satisfiedPerPair := make(map[demand.PairID]float64)
	for pi, d := range model.demands {
		for i := 0; i < s.Supply.NumEdges(); i++ {
			eid := graph.EdgeID(i)
			fwd := value(model.flowVar[optArc{pi, eid, true}])
			bwd := value(model.flowVar[optArc{pi, eid, false}])
			net := fwd - bwd
			if math.Abs(net) > 1e-9 {
				plan.Routing.AddFlow(d.ID, eid, net)
				e := s.Supply.Edge(eid)
				if e.To == d.Target {
					satisfiedPerPair[d.ID] += net
				}
				if e.From == d.Target {
					satisfiedPerPair[d.ID] -= net
				}
			}
		}
	}
	total := 0.0
	for _, d := range model.demands {
		delivered := satisfiedPerPair[d.ID]
		if delivered > d.Flow {
			delivered = d.Flow
		}
		if delivered > 0 {
			total += delivered
		}
	}
	plan.SatisfiedDemand = total
	// The demand endpoints that are broken must be repaired for the routing
	// to be physically meaningful even if no explicit constraint forces it
	// (a node with zero incident flow can remain unrepaired in the model).
	for _, d := range model.demands {
		if s.BrokenNodes[d.Source] && satisfiedPerPair[d.ID] > 1e-9 {
			plan.RepairedNodes[d.Source] = true
		}
		if s.BrokenNodes[d.Target] && satisfiedPerPair[d.ID] > 1e-9 {
			plan.RepairedNodes[d.Target] = true
		}
	}
}
