// Package core implements ISP (Iterative Split and Prune), the polynomial
// recovery heuristic that is the primary contribution of the paper (§IV).
//
// ISP iteratively simplifies a MinR instance: it prunes demands that the
// currently-working network can already carry (over "bubbles", Theorem 3),
// repairs broken supply edges that directly join otherwise-unservable demand
// endpoints, and otherwise selects the node with the highest demand-based
// centrality, repairs it if broken, and splits a demand through it so that
// flow concentrates on the elements already chosen for repair. The algorithm
// terminates when the residual demand is empty or routable through the
// working network, returning both the repair list and a routing.
package core

import (
	"time"

	"netrecovery/internal/flow"
)

// SplitMode selects how the maximum splittable amount dx (Decision 2 of
// §IV-C) is computed.
type SplitMode int

// Split modes.
const (
	// SplitExact solves the LP of Decision 2 (maximise dx subject to the
	// routability conditions with the post-split demand set). This is the
	// paper's algorithm and the default.
	SplitExact SplitMode = iota + 1
	// SplitGreedy estimates dx from the centrality path set (the capacity of
	// the shortest paths through the split node) and falls back to halving
	// until a constructive routability check passes. Much cheaper on large
	// topologies at the cost of occasionally splitting less than the LP
	// would allow.
	SplitGreedy
)

// CentralityMetric selects the node-ranking metric (ablation hook).
type CentralityMetric int

// Centrality metrics.
const (
	// CentralityDemandBased is the paper's metric (equation 3).
	CentralityDemandBased CentralityMetric = iota + 1
	// CentralityBetweenness is classical betweenness, used to quantify the
	// value of the demand-aware metric.
	CentralityBetweenness
)

// Options configure an ISP run. The zero value selects the paper's
// configuration.
type Options struct {
	// Routability configures the termination test (exact LP vs constructive).
	Routability flow.Options
	// SplitMode selects the dx computation (default SplitExact).
	SplitMode SplitMode
	// Centrality selects the ranking metric (default demand-based).
	Centrality CentralityMetric
	// DynamicPathMetric enables the repair-cost/capacity path metric of
	// §IV-D (default). When disabled (ablation) a pure hop metric is used.
	DisableDynamicPathMetric bool
	// DisablePruning turns off the prune action (ablation).
	DisablePruning bool
	// PathMetricConstant is the "const" term of the dynamic length metric,
	// accounting for the length of a working link. Zero means 1.
	PathMetricConstant float64
	// MaxIterations bounds the main loop as a safety net; zero means a
	// generous default proportional to the instance size.
	MaxIterations int
	// Timeout bounds the wall-clock time; zero means no limit. When the
	// timeout is hit ISP returns the best partial plan built so far.
	Timeout time.Duration
	// Progress, when set, is invoked at the top of every iteration of the
	// main loop with the 0-based iteration number and the number of elements
	// scheduled for repair so far, so long solves can stream liveness
	// information to an observer. The callback runs synchronously on the
	// solver goroutine and must be cheap.
	Progress func(iteration, repairs int)
}

// FastOptions returns the greedy-split configuration recommended for
// networks with hundreds of nodes: dx is estimated from the centrality path
// set instead of the exact LP, and the routability test picks its mode
// automatically.
func FastOptions() Options {
	return Options{
		SplitMode:   SplitGreedy,
		Routability: flow.Options{Mode: flow.ModeAuto},
	}
}

func (o Options) withDefaults(instanceSize int) Options {
	if o.SplitMode == 0 {
		o.SplitMode = SplitExact
	}
	if o.Centrality == 0 {
		o.Centrality = CentralityDemandBased
	}
	if o.PathMetricConstant == 0 {
		o.PathMetricConstant = 1
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 50*instanceSize + 1000
	}
	return o
}
