package core

import (
	"math"

	"netrecovery/internal/demand"
	"netrecovery/internal/flow"
	"netrecovery/internal/graph"
	"netrecovery/internal/lp"
	"netrecovery/internal/scenario"
)

// epsilon is the tolerance under which demands, capacities and flows are
// treated as zero inside ISP.
const epsilon = 1e-7

// state is the mutable per-run state of ISP: the evolving demand graph
// H^(n), residual capacities c^(n), the broken sets V_B^(n) / E_B^(n), the
// repair list L^(n) and the routing accumulated by prune actions.
type state struct {
	scen *scenario.Scenario
	opts Options

	// working is the evolving demand graph H^(n); pair IDs here are local to
	// the run and mapped back to the original pairs through rootOf.
	working *demand.Graph
	// rootOf maps working-pair IDs to the original scenario pair that the
	// flow ultimately serves (splits create derived pairs that inherit the
	// root).
	rootOf map[demand.PairID]demand.PairID

	// residual holds c^(n): the residual capacity of every edge, reduced by
	// prune actions as demand is routed.
	residual map[graph.EdgeID]float64

	// brokenNodes / brokenEdges are V_B^(n) and E_B^(n): broken elements not
	// yet scheduled for repair.
	brokenNodes map[graph.NodeID]bool
	brokenEdges map[graph.EdgeID]bool

	// repairedNodes / repairedEdges are the repair list L^(n).
	repairedNodes map[graph.NodeID]bool
	repairedEdges map[graph.EdgeID]bool

	// routing accumulates, per original pair, the signed edge flows decided
	// by prune actions and by the final routability test.
	routing scenario.Routing

	// tester runs the per-iteration exact routability tests, warm-starting
	// each LP from the previous iteration's basis.
	tester *flow.RoutabilityTester
	// splitSolver is the reusable LP solver behind the exact split LPs.
	splitSolver *lp.Solver

	// Pooled buffers for the per-iteration hot paths. Each buffer is owned
	// by exactly one call site (see the field comments); the slices/maps are
	// reused across iterations and must not be retained past the call that
	// filled them.
	capsBuf     map[graph.EdgeID]float64 // workingCapacityMap
	pruneCaps   map[graph.EdgeID]float64 // pruneOne's bubble-restricted capacities
	scaledBuf   map[graph.EdgeID]float64 // pruneOne / bestEffortRouting scaled flows
	bubbleSeen  map[graph.NodeID]bool    // findBubble visited set
	bubbleWall  map[graph.NodeID]bool    // findBubble barrier set
	bubbleQueue []graph.NodeID           // findBubble BFS queue
	pruneBuf    []demand.Pair            // pruneAll's per-round pair snapshot
	repairBuf   []demand.Pair            // repairDirectLinks' pair snapshot
	barrierBuf  []demand.Pair            // findBubble's active-pair snapshot
	workBuf     []demand.Pair            // workingInstance demands
	potBuf      []demand.Pair            // potentialInstance demands
	workInst    flow.Instance            // reused Instance for workingInstance
	potInst     flow.Instance            // reused Instance for potentialInstance
	hashBuf     []demand.Pair            // session memo-key demand snapshot

	// sess is the warm cross-solve session (nil for a cold solve) and
	// topoKey the topology digest folded into its memo keys.
	sess    *Session
	topoKey [32]byte

	// stats collects per-run counters for diagnostics and tests.
	stats Stats
}

// Stats counts the actions ISP performed during a run.
type Stats struct {
	Iterations   int
	Prunes       int
	Splits       int
	NodeRepairs  int
	EdgeRepairs  int
	Fallbacks    int
	FinalRouted  bool
	HitIteration bool
	HitTimeout   bool
	// Routability reports how the per-iteration LP-backed routability tests
	// were resolved (warm starts, rebuilds, constructive fallbacks).
	Routability flow.TesterStats
}

func newState(s *scenario.Scenario, opts Options, sess *Session) *state {
	st := &state{
		scen:          s,
		opts:          opts,
		sess:          sess,
		working:       demand.New(),
		rootOf:        make(map[demand.PairID]demand.PairID),
		residual:      make(map[graph.EdgeID]float64, s.Supply.NumEdges()),
		brokenNodes:   make(map[graph.NodeID]bool, len(s.BrokenNodes)),
		brokenEdges:   make(map[graph.EdgeID]bool, len(s.BrokenEdges)),
		repairedNodes: make(map[graph.NodeID]bool),
		repairedEdges: make(map[graph.EdgeID]bool),
		routing:       make(scenario.Routing),
		tester:        flow.NewRoutabilityTester(),
		splitSolver:   lp.NewSolver(),
		capsBuf:       make(map[graph.EdgeID]float64, s.Supply.NumEdges()),
		pruneCaps:     make(map[graph.EdgeID]float64, s.Supply.NumEdges()),
		scaledBuf:     make(map[graph.EdgeID]float64),
		bubbleSeen:    make(map[graph.NodeID]bool),
		bubbleWall:    make(map[graph.NodeID]bool),
	}
	for i := 0; i < s.Supply.NumEdges(); i++ {
		id := graph.EdgeID(i)
		st.residual[id] = s.Supply.Edge(id).Capacity
	}
	for v, b := range s.BrokenNodes {
		if b {
			st.brokenNodes[v] = true
		}
	}
	for e, b := range s.BrokenEdges {
		if b {
			st.brokenEdges[e] = true
		}
	}
	for _, p := range s.Demand.Active() {
		id := st.working.MustAdd(p.Source, p.Target, p.Flow)
		st.rootOf[id] = p.ID
	}
	return st
}

// repairNode moves v from the broken set to the repair list. It is a no-op
// for working or already-repaired nodes.
func (st *state) repairNode(v graph.NodeID) {
	if st.brokenNodes[v] {
		delete(st.brokenNodes, v)
		st.repairedNodes[v] = true
		st.stats.NodeRepairs++
	}
}

// repairEdge moves e from the broken set to the repair list, and repairs its
// endpoints as well: a repaired link is only usable if both endpoints work,
// and the MinR constraint 1(c) forces delta_i >= delta_ij.
func (st *state) repairEdge(e graph.EdgeID) {
	if st.brokenEdges[e] {
		delete(st.brokenEdges, e)
		st.repairedEdges[e] = true
		st.stats.EdgeRepairs++
	}
	edge := st.scen.Supply.Edge(e)
	st.repairNode(edge.From)
	st.repairNode(edge.To)
}

// workingInstance returns the flow instance of the currently working network
// G^(n): broken-and-not-repaired elements excluded, residual capacities, and
// the active working demands. The returned instance (and its demand slice)
// is pooled and invalidated by the next workingInstance call.
func (st *state) workingInstance() *flow.Instance {
	st.workBuf = st.working.ActiveInto(st.workBuf)
	st.workInst = flow.Instance{
		Graph:         st.scen.Supply,
		Capacities:    st.residual,
		ExcludedNodes: st.brokenNodes,
		ExcludedEdges: st.brokenEdges,
		Demands:       st.workBuf,
	}
	return &st.workInst
}

// potentialInstance returns the flow instance of the complete supply graph
// (broken elements usable) with residual capacities: the graph on which
// centrality, max-flow f* and the split LP are computed, since any element
// may still be repaired. The returned instance is pooled like
// workingInstance's.
func (st *state) potentialInstance() *flow.Instance {
	st.potBuf = st.working.ActiveInto(st.potBuf)
	st.potInst = flow.Instance{
		Graph:      st.scen.Supply,
		Capacities: st.residual,
		Demands:    st.potBuf,
	}
	return &st.potInst
}

// pathMetric returns the edge-length metric of §IV-D at the current
// iteration: [const + k^e(n) + (k^v_i(n)+k^v_j(n))/2] / c^(n)_ij, where the
// repair-cost terms vanish for elements already working or already listed
// for repair, and edges with no residual capacity are unusable. With the
// dynamic metric disabled (ablation) the metric is 1/c^(n)_ij.
func (st *state) pathMetric() graph.EdgeLength {
	constTerm := st.opts.PathMetricConstant
	return func(e graph.Edge) float64 {
		res := st.residual[e.ID]
		if res <= epsilon {
			return math.Inf(1)
		}
		if st.opts.DisableDynamicPathMetric {
			return constTerm / res
		}
		length := constTerm
		if st.brokenEdges[e.ID] {
			length += e.RepairCost
		}
		if st.brokenNodes[e.From] {
			length += st.scen.Supply.Node(e.From).RepairCost / 2
		}
		if st.brokenNodes[e.To] {
			length += st.scen.Supply.Node(e.To).RepairCost / 2
		}
		return length / res
	}
}

// edgeUsableWorking reports whether edge e is usable in G^(n) (not broken or
// already repaired, both endpoints working) with positive residual capacity.
func (st *state) edgeUsableWorking(e graph.EdgeID) bool {
	if st.brokenEdges[e] {
		return false
	}
	edge := st.scen.Supply.Edge(e)
	if st.brokenNodes[edge.From] || st.brokenNodes[edge.To] {
		return false
	}
	return st.residual[e] > epsilon
}

// addRouting accumulates signed edge flows for the original pair behind the
// given working pair.
func (st *state) addRouting(workingPair demand.PairID, flows map[graph.EdgeID]float64) {
	root, ok := st.rootOf[workingPair]
	if !ok {
		root = workingPair
	}
	for eid, f := range flows {
		if math.Abs(f) > epsilon {
			st.routing.AddFlow(root, eid, f)
		}
	}
}

// consumeCapacity reduces residual capacities by the absolute flow of the
// given assignment.
func (st *state) consumeCapacity(flows map[graph.EdgeID]float64) {
	for eid, f := range flows {
		use := math.Abs(f)
		if use <= epsilon {
			continue
		}
		st.residual[eid] -= use
		if st.residual[eid] < 0 {
			st.residual[eid] = 0
		}
	}
}

// addWorkingDemand adds (or merges into) a working demand pair with the
// given endpoints, flow and root. Merging only happens between pairs sharing
// the same root so that per-original-pair routing stays well defined.
func (st *state) addWorkingDemand(source, target graph.NodeID, flowAmount float64, root demand.PairID) {
	if flowAmount <= epsilon {
		return
	}
	for _, p := range st.working.Active() {
		if st.rootOf[p.ID] != root {
			continue
		}
		// Merge only pairs with the same orientation: merging a reversed
		// pair would change the net demand vector of the root and break the
		// routing-aggregation invariant.
		if p.Source == source && p.Target == target {
			_ = st.working.SetFlow(p.ID, p.Flow+flowAmount)
			return
		}
	}
	id := st.working.MustAdd(source, target, flowAmount)
	st.rootOf[id] = root
}
