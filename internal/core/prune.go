package core

import (
	"math"
	"sort"

	"netrecovery/internal/demand"
	"netrecovery/internal/graph"
)

// pruneAll repeatedly applies the prune action (§IV-F) until no demand can
// be pruned. It returns the number of prune actions performed.
func (st *state) pruneAll() int {
	if st.opts.DisablePruning {
		return 0
	}
	count := 0
	for {
		pruned := false
		// Deterministic order: by working pair ID.
		st.pruneBuf = st.working.ActiveInto(st.pruneBuf)
		pairs := st.pruneBuf
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].ID < pairs[j].ID })
		for _, p := range pairs {
			if st.pruneOne(p) {
				pruned = true
				count++
				st.stats.Prunes++
			}
		}
		if !pruned {
			return count
		}
	}
}

// pruneOne attempts to prune (part of) demand pair p over a bubble of
// working paths (Theorem 3). It routes the pruned amount, consumes residual
// capacity and reduces the working demand. It reports whether any amount was
// pruned.
func (st *state) pruneOne(p demand.Pair) bool {
	if p.Flow <= epsilon {
		return false
	}
	// Both endpoints must currently work.
	if st.brokenNodes[p.Source] || st.brokenNodes[p.Target] {
		return false
	}
	bubble := st.findBubble(p)
	if bubble == nil || !bubble[p.Target] {
		return false
	}

	// Max flow from source to target restricted to the bubble's working
	// edges with residual capacities. The capacity map is pooled across
	// prune attempts.
	caps := st.pruneCaps
	clear(caps)
	for i := 0; i < st.scen.Supply.NumEdges(); i++ {
		id := graph.EdgeID(i)
		e := st.scen.Supply.Edge(id)
		if !st.edgeUsableWorking(id) || !bubble[e.From] || !bubble[e.To] {
			caps[id] = 0
			continue
		}
		caps[id] = st.residual[id]
	}
	value, assignment := st.scen.Supply.MaxFlowWithAssignment(p.Source, p.Target, caps)
	prunable := math.Min(value, p.Flow)
	if prunable <= epsilon {
		return false
	}
	// Scale the assignment to the pruned amount and commit it.
	scale := prunable / value
	scaled := st.scaledBuf
	clear(scaled)
	for eid, f := range assignment {
		if v := f * scale; math.Abs(v) > epsilon {
			scaled[eid] = v
		}
	}
	st.addRouting(p.ID, scaled)
	st.consumeCapacity(scaled)
	if _, err := st.working.Reduce(p.ID, prunable); err != nil {
		return false
	}
	return true
}

// findBubble returns the bubble S_h of demand pair p (Definition 2): the set
// of nodes reachable from the source through working edges without entering
// the endpoint of any other active demand. The target is allowed (and must
// be reached for the bubble to be usable); other demand endpoints act as
// barriers, which guarantees that no conflicting demand can need the
// bubble's capacity without crossing s_h or t_h. It returns nil when the
// source itself is unusable.
func (st *state) findBubble(p demand.Pair) map[graph.NodeID]bool {
	if st.brokenNodes[p.Source] {
		return nil
	}
	// Endpoints of other active demands are barriers. Both the barrier and
	// visited maps are pooled: the returned map is invalidated by the next
	// findBubble call.
	barrier := st.bubbleWall
	clear(barrier)
	st.barrierBuf = st.working.ActiveInto(st.barrierBuf)
	for _, other := range st.barrierBuf {
		if other.ID == p.ID {
			continue
		}
		barrier[other.Source] = true
		barrier[other.Target] = true
	}
	delete(barrier, p.Source)
	delete(barrier, p.Target)

	visited := st.bubbleSeen
	clear(visited)
	visited[p.Source] = true
	queue := append(st.bubbleQueue[:0], p.Source)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		if barrier[u] {
			// Barrier nodes are not expanded (and not part of the bubble).
			continue
		}
		for _, eid := range st.scen.Supply.AdjacentEdges(u) {
			if !st.edgeUsableWorking(eid) {
				continue
			}
			v := st.scen.Supply.Edge(eid).Other(u)
			if visited[v] || barrier[v] {
				continue
			}
			visited[v] = true
			queue = append(queue, v)
		}
	}
	st.bubbleQueue = queue
	return visited
}
