package core

import (
	"context"
	"math/rand"
	"testing"

	"netrecovery/internal/demand"
	"netrecovery/internal/disruption"
	"netrecovery/internal/flow"
	"netrecovery/internal/scenario"
	"netrecovery/internal/topology"
)

// benchScenario builds the Quick-profile Bell-Canada scenario used by the
// ISP hot-loop benchmarks: 4 far-apart demand pairs of 10 units each under
// complete destruction (the Fig. 4 setting at its default point).
func benchScenario(b *testing.B) *scenario.Scenario {
	b.Helper()
	g := topology.BellCanada()
	rng := rand.New(rand.NewSource(1))
	dg, err := demand.GenerateFarApartPairs(g, 4, 10, rng)
	if err != nil {
		b.Fatal(err)
	}
	d := disruption.Complete(g)
	return &scenario.Scenario{Supply: g, Demand: dg, BrokenNodes: d.Nodes, BrokenEdges: d.Edges}
}

// benchISP runs full ISP solves and reports both the whole-solve time and a
// derived per-iteration metric (ns/isp-iter), since the LP-backed
// routability test per iteration is the hot path this package optimises.
func benchISP(b *testing.B, opts Options) {
	s := benchScenario(b)
	ctx := context.Background()
	totalIters := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats, err := Solve(ctx, s, opts)
		if err != nil {
			b.Fatal(err)
		}
		totalIters += stats.Iterations + 1
	}
	b.StopTimer()
	if totalIters > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(totalIters), "ns/isp-iter")
	}
}

// BenchmarkISP_Iteration is the headline hot-loop benchmark: ISP with the
// exact LP routability test (the paper's configuration) on the Quick
// profile, warm-started by the sparse revised simplex.
func BenchmarkISP_Iteration(b *testing.B) {
	benchISP(b, Options{Routability: flow.Options{Mode: flow.ModeExact}})
}

// BenchmarkISP_IterationDenseLP is the pre-rewrite comparison point: the
// same run forced onto the legacy dense tableau LP solver (no warm starts).
func BenchmarkISP_IterationDenseLP(b *testing.B) {
	benchISP(b, Options{Routability: flow.Options{Mode: flow.ModeExact, DenseLP: true}})
}

// BenchmarkISP_IterationGreedySplit measures the fast configuration (greedy
// split amounts, auto routability) used on large topologies.
func BenchmarkISP_IterationGreedySplit(b *testing.B) {
	benchISP(b, FastOptions())
}
