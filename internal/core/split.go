package core

import (
	"math"
	"sort"

	"netrecovery/internal/centrality"
	"netrecovery/internal/demand"
	"netrecovery/internal/flow"
	"netrecovery/internal/graph"
)

// computeCentrality runs the configured centrality metric on the complete
// supply graph with residual capacities and the current demand (§IV-B).
func (st *state) computeCentrality() centrality.Result {
	demands := st.working.Active()
	if st.opts.Centrality == CentralityBetweenness {
		return centrality.BetweennessAsResult(st.scen.Supply, demands)
	}
	return centrality.DemandBased(st.scen.Supply, demands, st.pathMetric(), st.residual)
}

// splitCandidate is one (node, demand) option for a split action.
type splitCandidate struct {
	via   graph.NodeID
	pair  demand.Pair
	score float64
}

// selectSplit implements Decision (1) of §IV-C for a given centrality
// ranking: walk the nodes in decreasing centrality order and, for the first
// node with usable contributing demands, pick the demand maximising
//
//	min{d_h, sum of c(p) for p in P*(h)|v} / f*(s_h, t_h)
//
// where f* is the max flow between the endpoints on the complete supply
// graph with residual capacities. Demands whose endpoint is the candidate
// node itself are skipped (splitting through an endpoint is a no-op).
// Returns false when no candidate exists.
func (st *state) selectSplit(rank centrality.Result) (splitCandidate, bool) {
	caps := make(map[graph.EdgeID]float64, len(st.residual))
	for eid, c := range st.residual {
		caps[eid] = c
	}
	for _, via := range rank.Ranking() {
		contributors := rank.Contributions[via]
		if len(contributors) == 0 {
			continue
		}
		ids := make([]demand.PairID, 0, len(contributors))
		for id := range contributors {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

		best := splitCandidate{score: -1}
		for _, id := range ids {
			p, ok := st.working.Pair(id)
			if !ok || p.Flow <= epsilon {
				continue
			}
			if p.Source == via || p.Target == via {
				continue
			}
			// Capacity of the shortest paths through via.
			through := graph.PathsThrough(rank.PathSets[id], via)
			capThrough := graph.TotalCapacity(through)
			if capThrough <= epsilon {
				continue
			}
			maxFlow := st.scen.Supply.MaxFlow(p.Source, p.Target, caps)
			if maxFlow <= epsilon {
				continue
			}
			score := math.Min(p.Flow, capThrough) / maxFlow
			if score > best.score {
				best = splitCandidate{via: via, pair: p, score: score}
			}
		}
		if best.score >= 0 {
			return best, true
		}
	}
	return splitCandidate{}, false
}

// splitAmount implements Decision (2) of §IV-C: the maximum dx that can be
// split through the candidate node while keeping the whole demand set
// routable on the complete supply graph with residual capacities.
func (st *state) splitAmount(cand splitCandidate, rank centrality.Result) float64 {
	switch st.opts.SplitMode {
	case SplitGreedy:
		return st.greedySplitAmount(cand, rank)
	default:
		if st.sess != nil {
			return st.splitAmountMemo(cand)
		}
		dx, err := flow.MaxSplitUsing(st.splitSolver, st.potentialInstance(), cand.pair, cand.via)
		if err != nil {
			return 0
		}
		return dx
	}
}

// greedySplitAmount estimates dx as the capacity of the centrality path set
// through the split node (capped by the demand), then halves it until the
// post-split demand set passes a constructive routability check on the
// complete graph, giving up below a small fraction of the demand.
func (st *state) greedySplitAmount(cand splitCandidate, rank centrality.Result) float64 {
	through := graph.PathsThrough(rank.PathSets[cand.pair.ID], cand.via)
	dx := math.Min(cand.pair.Flow, graph.TotalCapacity(through))
	if dx <= epsilon {
		return 0
	}
	minDx := cand.pair.Flow / 64
	for dx > minDx {
		if st.postSplitRoutable(cand, dx) {
			return dx
		}
		dx /= 2
	}
	return 0
}

// postSplitRoutable checks (constructively) whether splitting dx of the
// candidate demand through the candidate node keeps the demand set routable
// on the complete supply graph with residual capacities.
func (st *state) postSplitRoutable(cand splitCandidate, dx float64) bool {
	demands := make([]demand.Pair, 0, len(st.working.Active())+2)
	nextID := demand.PairID(1 << 20)
	for _, p := range st.working.Active() {
		if p.ID == cand.pair.ID {
			if p.Flow-dx > epsilon {
				demands = append(demands, demand.Pair{ID: p.ID, Source: p.Source, Target: p.Target, Flow: p.Flow - dx})
			}
			continue
		}
		demands = append(demands, p)
	}
	demands = append(demands,
		demand.Pair{ID: nextID, Source: cand.pair.Source, Target: cand.via, Flow: dx},
		demand.Pair{ID: nextID + 1, Source: cand.via, Target: cand.pair.Target, Flow: dx},
	)
	in := &flow.Instance{Graph: st.scen.Supply, Capacities: st.residual, Demands: demands}
	_, ok := flow.ConstructiveRouting(in)
	return ok
}

// applySplit performs the split action: reduces the split pair by dx and
// adds the two derived pairs (s_h, via) and (via, t_h), both inheriting the
// original pair's root for routing attribution.
func (st *state) applySplit(cand splitCandidate, dx float64) {
	root := st.rootOf[cand.pair.ID]
	if _, err := st.working.Reduce(cand.pair.ID, dx); err != nil {
		return
	}
	st.addWorkingDemand(cand.pair.Source, cand.via, dx, root)
	st.addWorkingDemand(cand.via, cand.pair.Target, dx, root)
	st.stats.Splits++
}
