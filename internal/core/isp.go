package core

import (
	"context"
	"fmt"
	"math"
	"runtime/debug"
	"sort"
	"time"

	"netrecovery/internal/degrade"
	"netrecovery/internal/demand"
	"netrecovery/internal/flow"
	"netrecovery/internal/graph"
	"netrecovery/internal/scenario"
)

// SolverName is the name recorded on plans produced by this package.
const SolverName = "ISP"

// Solve runs ISP on the scenario and returns the repair plan, the routing of
// the demand flows and per-run statistics.
//
// The algorithm follows Algorithm 1 of the paper:
//
//	while the routability test on the working network fails:
//	    prune every demand that working "bubble" paths can carry
//	    if a demand endpoint pair has a broken direct supply link and cannot
//	       be served by working paths: repair that link
//	    else: pick the node with the highest demand-based centrality,
//	          repair it if broken, and split the best demand through it
//
// Upon termination the residual demand is routed through the working network
// (final routability routing) and combined with the routing accumulated by
// prune actions.
//
// Cancellation: the context is checked at the top of every iteration of the
// main loop; once it fires, Solve stops promptly and returns ctx.Err().
func Solve(ctx context.Context, s *scenario.Scenario, opts Options) (*scenario.Plan, Stats, error) {
	return solve(ctx, s, opts, nil)
}

// solve is the shared implementation behind Solve (cold, sess == nil) and
// Session.Solve (warm, subproblems answered from the session memo). A
// panic anywhere in the ISP pipeline is converted into a typed
// *degrade.PanicError at this boundary: ISP is the serving stack's
// fallback solver, and a bug on one input must surface as a failed solve,
// not a crashed daemon.
func solve(ctx context.Context, s *scenario.Scenario, opts Options, sess *Session) (plan *scenario.Plan, stats Stats, err error) {
	defer func() {
		if r := recover(); r != nil {
			plan, stats, err = nil, Stats{}, degrade.Recovered("core:isp", r, debug.Stack())
		}
	}()
	start := time.Now()
	if err := s.Validate(); err != nil {
		return nil, Stats{}, fmt.Errorf("isp: %w", err)
	}
	opts = opts.withDefaults(s.Supply.NumNodes() + s.Supply.NumEdges() + s.Demand.NumPairs())
	st := newState(s, opts, sess)
	if sess != nil {
		st.topoKey = sess.topoDigest(s.Supply)
	}

	// Mandatory repairs: a broken endpoint of an active demand must be
	// repaired in every feasible solution (its demand cannot otherwise
	// terminate there), so schedule those repairs up front.
	for _, p := range st.working.Active() {
		st.repairNode(p.Source)
		st.repairNode(p.Target)
	}

	deadline := time.Time{}
	if opts.Timeout > 0 {
		deadline = start.Add(opts.Timeout)
	}

	for iter := 0; ; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, st.stats, fmt.Errorf("isp: %w", err)
		}
		st.stats.Iterations = iter
		if opts.Progress != nil {
			opts.Progress(iter, len(st.repairedNodes)+len(st.repairedEdges))
		}
		if iter >= opts.MaxIterations {
			st.stats.HitIteration = true
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			st.stats.HitTimeout = true
			break
		}

		// Prune whatever the working network can already carry.
		st.pruneAll()
		if st.working.Empty() {
			st.stats.FinalRouted = true
			break
		}

		// Termination test: is the residual demand routable through the
		// working network? The tester warm-starts each LP from the previous
		// iteration's optimal basis, so consecutive tests (which differ by a
		// single repair, prune or split) re-solve in a few dual pivots.
		res := st.checkRoutability()
		if res.Routable {
			st.commitFinalRouting(res)
			st.stats.FinalRouted = true
			break
		}

		// Repair broken supply links that directly join demand endpoints
		// that working paths cannot serve (§IV-E).
		if st.repairDirectLinks() {
			continue
		}

		// Split step: centrality ranking, candidate selection, dx, split.
		rank := st.computeCentrality()
		cand, ok := st.selectSplit(rank)
		if !ok {
			if !st.fallbackRepair() {
				break
			}
			continue
		}
		st.repairNode(cand.via)
		dx := st.splitAmount(cand, rank)
		if dx <= epsilon {
			// The chosen node cannot carry any additional flow. Progress is
			// still guaranteed if the node was just repaired; otherwise fall
			// back to repairing the shortest broken path of the hardest
			// demand so the algorithm cannot stall.
			if st.repairedThisIteration(cand.via) {
				continue
			}
			if !st.fallbackRepair() {
				break
			}
			continue
		}
		st.applySplit(cand, dx)
	}

	if !st.stats.FinalRouted {
		st.bestEffortRouting()
	}
	st.stats.Routability = st.tester.Stats
	return st.buildPlan(start), st.stats, nil
}

// checkRoutability runs the per-iteration routability test, answering it
// from the session memo when a warm session is attached.
func (st *state) checkRoutability() flow.Result {
	if st.sess != nil {
		return st.checkRoutabilityMemo()
	}
	return st.tester.Check(st.workingInstance(), st.opts.Routability)
}

// bestEffortRouting routes as much of the still-unserved demand as possible
// over the working network when the run terminated early (iteration or time
// limit) or the demand is not fully routable even with every repair, so the
// returned plan still carries a maximal feasible routing instead of dropping
// the flows it could have served.
//
// Routing happens between the *original* demand endpoints (not the derived
// split pairs) so that per-pair flow conservation always holds in the
// resulting plan; the residual capacities already account for the flow
// committed by prune actions.
func (st *state) bestEffortRouting() {
	caps := st.workingCapacityMap()
	for _, p := range st.scen.Demand.Active() {
		remaining := p.Flow - st.deliveredForPair(p)
		if remaining <= epsilon {
			continue
		}
		if st.brokenNodes[p.Source] || st.brokenNodes[p.Target] {
			continue
		}
		value, assignment := st.scen.Supply.MaxFlowWithAssignment(p.Source, p.Target, caps)
		routed := math.Min(value, remaining)
		if routed <= epsilon {
			continue
		}
		scale := routed / value
		scaled := st.scaledBuf
		clear(scaled)
		for eid, f := range assignment {
			if v := f * scale; math.Abs(v) > epsilon {
				scaled[eid] = v
				caps[eid] -= math.Abs(v)
				if caps[eid] < 0 {
					caps[eid] = 0
				}
			}
		}
		for eid, f := range scaled {
			st.routing.AddFlow(p.ID, eid, f)
		}
	}
}

// deliveredForPair returns the net flow already delivered to the target of
// the original pair p by the accumulated routing.
func (st *state) deliveredForPair(p demand.Pair) float64 {
	flows := st.routing[p.ID]
	if len(flows) == 0 {
		return 0
	}
	net := 0.0
	for eid, f := range flows {
		e := st.scen.Supply.Edge(eid)
		if e.To == p.Target {
			net += f
		}
		if e.From == p.Target {
			net -= f
		}
	}
	if net < 0 {
		return 0
	}
	return net
}

// repairedThisIteration reports whether v is listed for repair (used to
// decide whether a zero-dx split iteration still made progress).
func (st *state) repairedThisIteration(v graph.NodeID) bool {
	return st.repairedNodes[v]
}

// commitFinalRouting merges the routing produced by the final routability
// test into the accumulated plan routing and clears the residual demand.
func (st *state) commitFinalRouting(res flow.Result) {
	if res.Routing != nil {
		for pid, flows := range res.Routing {
			st.addRouting(pid, flows)
		}
	} else {
		// The exact test can return no routing only for an empty demand;
		// the constructive test always returns one when routable. As a
		// safeguard, recompute constructively.
		routing, ok := flow.ConstructiveRouting(st.workingInstance())
		if ok {
			for pid, flows := range routing {
				st.addRouting(pid, flows)
			}
		}
	}
	for _, p := range st.working.Active() {
		_ = st.working.SetFlow(p.ID, 0)
	}
}

// repairDirectLinks implements §IV-E: for every active demand whose
// endpoints cannot be served by working paths (the single-commodity max flow
// on the working network is short of the demand) and that has a broken
// direct supply edge between its endpoints, repair that edge. It reports
// whether any repair happened.
func (st *state) repairDirectLinks() bool {
	repaired := false
	caps := st.workingCapacityMap()
	st.repairBuf = st.working.ActiveInto(st.repairBuf)
	pairs := st.repairBuf
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].ID < pairs[j].ID })
	for _, p := range pairs {
		direct := st.brokenDirectEdge(p)
		if direct == graph.InvalidEdge {
			continue
		}
		available := 0.0
		if !st.brokenNodes[p.Source] && !st.brokenNodes[p.Target] {
			available = st.scen.Supply.MaxFlow(p.Source, p.Target, caps)
		}
		if available+epsilon >= p.Flow {
			continue
		}
		st.repairEdge(direct)
		// Repairing changes the working graph; refresh the capacity view.
		caps = st.workingCapacityMap()
		repaired = true
	}
	return repaired
}

// brokenDirectEdge returns a broken supply edge joining the endpoints of p,
// or InvalidEdge if none exists.
func (st *state) brokenDirectEdge(p demand.Pair) graph.EdgeID {
	best := graph.InvalidEdge
	bestCap := math.Inf(-1)
	for _, eid := range st.scen.Supply.AdjacentEdges(p.Source) {
		e := st.scen.Supply.Edge(eid)
		if e.Other(p.Source) != p.Target || !st.brokenEdges[eid] {
			continue
		}
		if c := st.residual[eid]; c > bestCap {
			best = eid
			bestCap = c
		}
	}
	return best
}

// workingCapacityMap returns the residual capacity of every edge usable in
// the working network (0 for unusable edges), for max-flow queries. The map
// is pooled: it is refilled (and therefore invalidated) by the next call.
func (st *state) workingCapacityMap() map[graph.EdgeID]float64 {
	caps := st.capsBuf
	clear(caps)
	for i := 0; i < st.scen.Supply.NumEdges(); i++ {
		id := graph.EdgeID(i)
		if st.edgeUsableWorking(id) {
			caps[id] = st.residual[id]
		} else {
			caps[id] = 0
		}
	}
	return caps
}

// fallbackRepair guarantees progress when no split candidate exists (for
// example when every centrality path set has zero capacity): it repairs the
// broken elements of the shortest (dynamic-metric) path of the largest
// unserved demand. It reports whether it repaired anything; returning false
// means the instance cannot be advanced further (the demand is unroutable
// even on the full graph).
func (st *state) fallbackRepair() bool {
	st.stats.Fallbacks++
	pairs := st.working.SortedByFlowDesc()
	metric := st.pathMetric()
	for _, p := range pairs {
		path, dist := st.scen.Supply.ShortestPath(p.Source, p.Target, metric)
		if path.Empty() || math.IsInf(dist, 1) {
			continue
		}
		progressed := false
		for _, v := range path.Nodes {
			if st.brokenNodes[v] {
				st.repairNode(v)
				progressed = true
			}
		}
		for _, eid := range path.Edges {
			if st.brokenEdges[eid] {
				st.repairEdge(eid)
				progressed = true
			}
		}
		if progressed {
			return true
		}
	}
	return false
}

// buildPlan assembles the final plan from the run state.
func (st *state) buildPlan(start time.Time) *scenario.Plan {
	plan := scenario.NewPlan(SolverName)
	for v := range st.repairedNodes {
		plan.RepairedNodes[v] = true
	}
	for e := range st.repairedEdges {
		plan.RepairedEdges[e] = true
	}
	plan.Routing = st.routing.Clone()
	plan.TotalDemand = st.scen.Demand.TotalFlow()
	plan.SatisfiedDemand = st.deliveredDemand()
	plan.Runtime = time.Since(start)
	if st.stats.HitIteration || st.stats.HitTimeout {
		plan.Notes = "terminated early (iteration or time limit)"
	}
	return plan
}

// deliveredDemand computes, per original pair, the net flow delivered to the
// pair's target by the accumulated routing (capped at the pair's demand).
func (st *state) deliveredDemand() float64 {
	total := 0.0
	for _, p := range st.scen.Demand.Active() {
		flows := st.routing[p.ID]
		if len(flows) == 0 {
			continue
		}
		net := 0.0
		for eid, f := range flows {
			e := st.scen.Supply.Edge(eid)
			if e.To == p.Target {
				net += f
			}
			if e.From == p.Target {
				net -= f
			}
		}
		if net > p.Flow {
			net = p.Flow
		}
		if net > 0 {
			total += net
		}
	}
	return total
}
