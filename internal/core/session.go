package core

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"math"

	"netrecovery/internal/flow"
	"netrecovery/internal/graph"
	"netrecovery/internal/scenario"
)

// Session keeps warm solver state alive across successive ISP solves of
// nearby scenarios — the incremental re-planning workload where a disruption
// evolves by deltas (one more break, a completed repair, a demand change)
// and every delta triggers a re-plan.
//
// ISP is deterministic, and its per-iteration subproblems — the split LP of
// Decision (2) and the exact routability LP — are pure functions of their
// inputs (residual capacities, broken sets, working demands). The session
// memoizes those subproblem results keyed by an exact content hash of the
// full subproblem input. A re-plan after a small delta re-executes the cheap
// algorithm skeleton (prunes, bubbles, centrality, max-flows) but answers
// every recurring LP subproblem from the memo, skipping the dominant cost.
//
// Soundness: a memo hit requires the complete subproblem input to be
// byte-identical, and split LPs are solved in lp deterministic mode (a pure
// function of the problem data), so a hit returns the bit-identical value a
// cold solve would compute — warm plans are equal to cold plans by
// construction, not by luck. The only permitted divergence is the routing
// certificate of the final routability test, which may be a different
// optimal routing when earlier checks were answered from the memo; repairs,
// satisfied demand and every wire-visible plan field are unaffected (pinned
// by the session equivalence tests).
//
// A Session is not safe for concurrent use; callers serialise re-plans (the
// facade PlannerSession and the server session manager both do).
type Session struct {
	splitMemo map[[32]byte]float64
	routMemo  map[[32]byte]routEntry
	// maxEntries bounds each memo; on overflow the memo is reset wholesale
	// (epoch eviction — the memo is a performance cache, not a correctness
	// structure, and scenario trajectories cluster tightly in practice).
	maxEntries int

	stats SessionStats

	h   hash.Hash
	buf []byte
}

// routEntry is one memoized exact routability answer. The routing is shared
// across hits and must be treated as immutable (ISP only reads it).
type routEntry struct {
	routable bool
	exact    bool
	routing  scenario.Routing
}

// SessionStats counts memo activity across the session's solves.
type SessionStats struct {
	// Solves is the number of Solve calls answered by the session.
	Solves int
	// SplitHits / SplitMisses count split-LP subproblems answered from the
	// memo vs solved.
	SplitHits, SplitMisses int
	// RoutabilityHits / RoutabilityMisses count exact routability tests
	// answered from the memo vs solved.
	RoutabilityHits, RoutabilityMisses int
}

// sessionMaxEntries is the default per-memo entry bound. Entries are tens of
// bytes (split) to a few KB (routability routings); the bound keeps a
// long-lived session's footprint in the tens of MB worst case.
const sessionMaxEntries = 1 << 16

// NewSession returns an empty warm session.
func NewSession() *Session {
	return &Session{
		splitMemo:  make(map[[32]byte]float64),
		routMemo:   make(map[[32]byte]routEntry),
		maxEntries: sessionMaxEntries,
		h:          sha256.New(),
		buf:        make([]byte, 0, 4096),
	}
}

// Stats returns a snapshot of the session counters.
func (sess *Session) Stats() SessionStats { return sess.stats }

// Solve runs ISP on the scenario with the session's warm state. It is
// plan-equivalent to core.Solve on the same scenario and options.
func (sess *Session) Solve(ctx context.Context, s *scenario.Scenario, opts Options) (*scenario.Plan, Stats, error) {
	sess.stats.Solves++
	return solve(ctx, s, opts, sess)
}

// topoDigest hashes the solver-relevant topology content (node repair costs;
// edge endpoints, capacities, repair costs). It is computed once per Solve
// and folded into every memo key, so sessions never confuse subproblems of
// different topologies (solvers clone scenarios, so pointer identity is
// useless here).
func (sess *Session) topoDigest(g *graph.Graph) [32]byte {
	sess.h.Reset()
	sess.buf = sess.buf[:0]
	sess.buf = append(sess.buf, 'T')
	sess.buf = appendU64(sess.buf, uint64(g.NumNodes()))
	for _, n := range g.Nodes() {
		sess.buf = appendF64(sess.buf, n.RepairCost)
	}
	sess.buf = appendU64(sess.buf, uint64(g.NumEdges()))
	for _, e := range g.Edges() {
		sess.buf = appendU64(sess.buf, uint64(int64(e.From)))
		sess.buf = appendU64(sess.buf, uint64(int64(e.To)))
		sess.buf = appendF64(sess.buf, e.Capacity)
		sess.buf = appendF64(sess.buf, e.RepairCost)
	}
	sess.h.Write(sess.buf)
	var out [32]byte
	sess.h.Sum(out[:0])
	return out
}

// splitKey hashes the complete input of one split-LP subproblem: topology,
// residual capacities, the working demand list, the split pair and the split
// node. Options that shape the LP (the exact split mode) are implied by the
// call site.
func (st *state) splitKey(cand splitCandidate) [32]byte {
	sess := st.sess
	sess.buf = sess.buf[:0]
	sess.buf = append(sess.buf, 'S')
	sess.buf = st.appendResidual(sess.buf)
	sess.buf = st.appendDemands(sess.buf)
	sess.buf = appendU64(sess.buf, uint64(int64(cand.pair.ID)))
	sess.buf = appendU64(sess.buf, uint64(int64(cand.via)))
	return sess.sum(st.topoKey)
}

// routKey hashes the complete input of one exact routability test: topology,
// residual capacities, broken sets, the working demand list and the
// routability options.
func (st *state) routKey() [32]byte {
	sess := st.sess
	sess.buf = sess.buf[:0]
	sess.buf = append(sess.buf, 'R')
	sess.buf = st.appendResidual(sess.buf)
	// Broken sets as positional bitmaps: deterministic without sorting.
	for i := 0; i < st.scen.Supply.NumNodes(); i++ {
		sess.buf = appendBool(sess.buf, st.brokenNodes[graph.NodeID(i)])
	}
	for i := 0; i < st.scen.Supply.NumEdges(); i++ {
		sess.buf = appendBool(sess.buf, st.brokenEdges[graph.EdgeID(i)])
	}
	sess.buf = st.appendDemands(sess.buf)
	sess.buf = appendU64(sess.buf, uint64(st.opts.Routability.Mode))
	sess.buf = appendU64(sess.buf, uint64(st.opts.Routability.MaxLPVariables))
	sess.buf = appendBool(sess.buf, st.opts.Routability.DenseLP)
	return sess.sum(st.topoKey)
}

// appendResidual appends the residual capacity of every edge in ID order.
func (st *state) appendResidual(buf []byte) []byte {
	for i := 0; i < st.scen.Supply.NumEdges(); i++ {
		buf = appendF64(buf, st.residual[graph.EdgeID(i)])
	}
	return buf
}

// appendDemands appends the active working demand list (IDs are run-local
// but deterministic: identical trajectories assign identical IDs).
func (st *state) appendDemands(buf []byte) []byte {
	st.hashBuf = st.working.ActiveInto(st.hashBuf)
	buf = appendU64(buf, uint64(len(st.hashBuf)))
	for _, p := range st.hashBuf {
		buf = appendU64(buf, uint64(int64(p.ID)))
		buf = appendU64(buf, uint64(int64(p.Source)))
		buf = appendU64(buf, uint64(int64(p.Target)))
		buf = appendF64(buf, p.Flow)
	}
	return buf
}

// sum hashes the topology digest plus the scratch buffer.
func (sess *Session) sum(topo [32]byte) [32]byte {
	sess.h.Reset()
	sess.h.Write(topo[:])
	sess.h.Write(sess.buf)
	var out [32]byte
	sess.h.Sum(out[:0])
	return out
}

// splitAmountMemo answers the exact split subproblem from the memo, solving
// and storing on a miss.
func (st *state) splitAmountMemo(cand splitCandidate) float64 {
	key := st.splitKey(cand)
	if dx, ok := st.sess.splitMemo[key]; ok {
		st.sess.stats.SplitHits++
		return dx
	}
	st.sess.stats.SplitMisses++
	dx, err := flow.MaxSplitUsing(st.splitSolver, st.potentialInstance(), cand.pair, cand.via)
	if err != nil {
		return 0
	}
	if len(st.sess.splitMemo) >= st.sess.maxEntries {
		clear(st.sess.splitMemo)
	}
	st.sess.splitMemo[key] = dx
	return dx
}

// checkRoutabilityMemo answers the exact routability test from the memo,
// solving and storing on a miss. Only the exact mode is memoized: the auto
// mode's answer depends on instance-size heuristics already captured in the
// key, but its constructive fallback is cheap enough that memoizing it
// buys nothing.
func (st *state) checkRoutabilityMemo() flow.Result {
	key := st.routKey()
	if e, ok := st.sess.routMemo[key]; ok {
		st.sess.stats.RoutabilityHits++
		return flow.Result{Routable: e.routable, Exact: e.exact, Routing: e.routing}
	}
	st.sess.stats.RoutabilityMisses++
	res := st.tester.Check(st.workingInstance(), st.opts.Routability)
	if len(st.sess.routMemo) >= st.sess.maxEntries {
		clear(st.sess.routMemo)
	}
	st.sess.routMemo[key] = routEntry{routable: res.Routable, exact: res.Exact, routing: res.Routing}
	return res
}

// appendU64 appends v big-endian.
func appendU64(buf []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(buf, v)
}

// appendF64 appends the IEEE-754 bit pattern of f.
func appendF64(buf []byte, f float64) []byte {
	return appendU64(buf, math.Float64bits(f))
}

// appendBool appends one byte.
func appendBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}
