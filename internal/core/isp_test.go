package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"netrecovery/internal/demand"
	"netrecovery/internal/disruption"
	"netrecovery/internal/flow"
	"netrecovery/internal/graph"
	"netrecovery/internal/scenario"
	"netrecovery/internal/topology"
)

// pathScenario builds a line 0-1-2-3-4 (capacity 10, unit costs) with the
// given broken elements and one demand 0->4 of the given flow.
func pathScenario(t *testing.T, brokenNodes []graph.NodeID, brokenEdges []graph.EdgeID, flowUnits float64) *scenario.Scenario {
	t.Helper()
	g := graph.New(5, 4)
	for i := 0; i < 5; i++ {
		g.AddNode("", float64(i), 0, 1)
	}
	for i := 0; i < 4; i++ {
		g.MustAddEdge(graph.NodeID(i), graph.NodeID(i+1), 10, 1)
	}
	dg := demand.New()
	dg.MustAdd(0, 4, flowUnits)
	s := &scenario.Scenario{
		Supply:      g,
		Demand:      dg,
		BrokenNodes: map[graph.NodeID]bool{},
		BrokenEdges: map[graph.EdgeID]bool{},
	}
	for _, v := range brokenNodes {
		s.BrokenNodes[v] = true
	}
	for _, e := range brokenEdges {
		s.BrokenEdges[e] = true
	}
	return s
}

// gridScenario builds an n x n grid with the given capacity, a geographic or
// complete disruption and a set of corner-to-corner demands.
func gridScenario(t *testing.T, n int, capacity float64, complete bool, pairsFlow []float64) *scenario.Scenario {
	t.Helper()
	g, err := topology.Grid(n, n, topology.DefaultConfig(capacity))
	if err != nil {
		t.Fatal(err)
	}
	dg := demand.New()
	for i, f := range pairsFlow {
		switch i % 2 {
		case 0:
			dg.MustAdd(0, graph.NodeID(n*n-1), f)
		default:
			dg.MustAdd(graph.NodeID(n-1), graph.NodeID(n*n-n), f)
		}
	}
	var d disruption.Disruption
	if complete {
		d = disruption.Complete(g)
	} else {
		d = disruption.Random(g, 0.3, 0.3, rand.New(rand.NewSource(1)))
	}
	return &scenario.Scenario{Supply: g, Demand: dg, BrokenNodes: d.Nodes, BrokenEdges: d.Edges}
}

func verifyPlan(t *testing.T, s *scenario.Scenario, p *scenario.Plan) {
	t.Helper()
	if err := scenario.VerifyPlan(s, p); err != nil {
		t.Fatalf("plan verification failed: %v", err)
	}
}

func TestISPNoDamageNoRepairs(t *testing.T) {
	s := pathScenario(t, nil, nil, 5)
	plan, stats, err := Solve(context.Background(), s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, total := plan.NumRepairs(); total != 0 {
		t.Errorf("repairs = %d, want 0", total)
	}
	if plan.SatisfactionRatio() < 1-1e-9 {
		t.Errorf("satisfaction = %f, want 1", plan.SatisfactionRatio())
	}
	if !stats.FinalRouted {
		t.Error("expected normal termination")
	}
	verifyPlan(t, s, plan)
}

func TestISPSingleBrokenEdgeOnPath(t *testing.T) {
	// Only edge 1-2 broken on the line: ISP must repair exactly that edge.
	s := pathScenario(t, nil, []graph.EdgeID{1}, 5)
	plan, _, err := Solve(context.Background(), s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.RepairedEdges[1] {
		t.Error("edge 1 must be repaired")
	}
	if _, _, total := plan.NumRepairs(); total != 1 {
		t.Errorf("repairs = %d, want 1", total)
	}
	if plan.SatisfactionRatio() < 1-1e-9 {
		t.Errorf("satisfaction = %f", plan.SatisfactionRatio())
	}
	verifyPlan(t, s, plan)
}

func TestISPBrokenEndpointIsRepaired(t *testing.T) {
	s := pathScenario(t, []graph.NodeID{0}, nil, 5)
	plan, _, err := Solve(context.Background(), s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.RepairedNodes[0] {
		t.Error("demand endpoint 0 must be repaired")
	}
	verifyPlan(t, s, plan)
}

func TestISPCompleteDestructionLine(t *testing.T) {
	// Whole line destroyed: the only way to serve 0->4 is to repair all 5
	// nodes and all 4 edges.
	s := pathScenario(t, []graph.NodeID{0, 1, 2, 3, 4}, []graph.EdgeID{0, 1, 2, 3}, 5)
	plan, _, err := Solve(context.Background(), s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	nodes, edges, _ := plan.NumRepairs()
	if nodes != 5 || edges != 4 {
		t.Errorf("repairs = %d nodes, %d edges; want 5 and 4", nodes, edges)
	}
	if plan.SatisfactionRatio() < 1-1e-9 {
		t.Errorf("satisfaction = %f, want 1", plan.SatisfactionRatio())
	}
	verifyPlan(t, s, plan)
}

func TestISPAvoidsUnnecessaryRepairs(t *testing.T) {
	// Diamond: top route 0-1-3 broken, bottom route 0-2-3 working with
	// enough capacity. ISP should repair nothing.
	g := graph.New(4, 4)
	for i := 0; i < 4; i++ {
		g.AddNode("", float64(i), float64(i%2), 1)
	}
	g.MustAddEdge(0, 1, 10, 1) // 0 broken
	g.MustAddEdge(1, 3, 10, 1) // 1 broken
	g.MustAddEdge(0, 2, 10, 1)
	g.MustAddEdge(2, 3, 10, 1)
	dg := demand.New()
	dg.MustAdd(0, 3, 8)
	s := &scenario.Scenario{
		Supply:      g,
		Demand:      dg,
		BrokenNodes: map[graph.NodeID]bool{1: true},
		BrokenEdges: map[graph.EdgeID]bool{0: true, 1: true},
	}
	plan, _, err := Solve(context.Background(), s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, total := plan.NumRepairs(); total != 0 {
		t.Errorf("repairs = %d, want 0 (working route suffices)", total)
	}
	verifyPlan(t, s, plan)
}

func TestISPRepairsOnlyOneRouteOfDiamond(t *testing.T) {
	// Fully destroyed diamond with demand that fits on a single route: ISP
	// should not repair both routes.
	g := graph.New(4, 4)
	for i := 0; i < 4; i++ {
		g.AddNode("", float64(i), float64(i%2), 1)
	}
	g.MustAddEdge(0, 1, 10, 1)
	g.MustAddEdge(1, 3, 10, 1)
	g.MustAddEdge(0, 2, 10, 1)
	g.MustAddEdge(2, 3, 10, 1)
	dg := demand.New()
	dg.MustAdd(0, 3, 8)
	d := disruption.Complete(g)
	s := &scenario.Scenario{Supply: g, Demand: dg, BrokenNodes: d.Nodes, BrokenEdges: d.Edges}
	plan, _, err := Solve(context.Background(), s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	nodes, edges, _ := plan.NumRepairs()
	if nodes > 3 {
		t.Errorf("node repairs = %d, want <= 3 (one route)", nodes)
	}
	if edges > 2 {
		t.Errorf("edge repairs = %d, want <= 2 (one route)", edges)
	}
	if plan.SatisfactionRatio() < 1-1e-9 {
		t.Errorf("satisfaction = %f, want 1", plan.SatisfactionRatio())
	}
	verifyPlan(t, s, plan)
}

func TestISPSharesRepairsAcrossDemands(t *testing.T) {
	// Two demands between the same far-apart endpoints of a destroyed 3x3
	// grid: the total demand fits on one shared route, so ISP should repair
	// roughly one route, not two.
	g, err := topology.Grid(3, 3, topology.DefaultConfig(20))
	if err != nil {
		t.Fatal(err)
	}
	dg := demand.New()
	dg.MustAdd(0, 8, 6)
	dg.MustAdd(0, 8, 6)
	d := disruption.Complete(g)
	s := &scenario.Scenario{Supply: g, Demand: dg, BrokenNodes: d.Nodes, BrokenEdges: d.Edges}
	plan, _, err := Solve(context.Background(), s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, edges, _ := plan.NumRepairs()
	if edges > 5 {
		t.Errorf("edge repairs = %d, expected a single shared route (about 4)", edges)
	}
	if plan.SatisfactionRatio() < 1-1e-9 {
		t.Errorf("satisfaction = %f, want 1", plan.SatisfactionRatio())
	}
	verifyPlan(t, s, plan)
}

func TestISPGridCompleteDestruction(t *testing.T) {
	s := gridScenario(t, 3, 20, true, []float64{10, 10})
	plan, stats, err := Solve(context.Background(), s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.FinalRouted {
		t.Errorf("expected normal termination, stats = %+v", stats)
	}
	if plan.SatisfactionRatio() < 1-1e-9 {
		t.Errorf("satisfaction = %f, want 1 (ISP incurs no demand loss)", plan.SatisfactionRatio())
	}
	nodes, edges, total := plan.NumRepairs()
	if total == 0 || total > s.Supply.NumNodes()+s.Supply.NumEdges() {
		t.Errorf("repairs = %d nodes + %d edges", nodes, edges)
	}
	verifyPlan(t, s, plan)
}

func TestISPGridPartialDestruction(t *testing.T) {
	s := gridScenario(t, 4, 20, false, []float64{8, 8})
	plan, _, err := Solve(context.Background(), s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.SatisfactionRatio() < 1-1e-9 {
		t.Errorf("satisfaction = %f, want 1", plan.SatisfactionRatio())
	}
	broken := s.TotalRepairCost()
	if cost := plan.RepairCost(s); cost > broken {
		t.Errorf("repair cost %f exceeds cost of repairing everything %f", cost, broken)
	}
	verifyPlan(t, s, plan)
}

func TestISPGreedySplitMode(t *testing.T) {
	s := gridScenario(t, 3, 20, true, []float64{10, 10})
	plan, _, err := Solve(context.Background(), s, Options{SplitMode: SplitGreedy})
	if err != nil {
		t.Fatal(err)
	}
	if plan.SatisfactionRatio() < 1-1e-9 {
		t.Errorf("greedy split satisfaction = %f, want 1", plan.SatisfactionRatio())
	}
	verifyPlan(t, s, plan)
}

func TestISPAblations(t *testing.T) {
	s := gridScenario(t, 3, 20, true, []float64{10})
	base, _, err := Solve(context.Background(), s.Clone(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, _, baseTotal := base.NumRepairs()

	cases := map[string]Options{
		"betweenness centrality": {Centrality: CentralityBetweenness},
		"static path metric":     {DisableDynamicPathMetric: true},
		"no pruning":             {DisablePruning: true},
	}
	for name, opts := range cases {
		t.Run(name, func(t *testing.T) {
			plan, _, err := Solve(context.Background(), s.Clone(), opts)
			if err != nil {
				t.Fatal(err)
			}
			verifyPlan(t, s, plan)
			if plan.SatisfactionRatio() < 1-1e-9 {
				t.Errorf("satisfaction = %f, want 1", plan.SatisfactionRatio())
			}
			if _, _, total := plan.NumRepairs(); total < baseTotal {
				// Ablations may repair more, never fewer than needed; a
				// smaller count than the default configuration would be
				// surprising but not incorrect, so only log it.
				t.Logf("%s repaired %d < base %d", name, total, baseTotal)
			}
		})
	}
}

func TestISPUnroutableDemandReportsPartial(t *testing.T) {
	// Demand exceeds total capacity even with every repair: ISP must not
	// claim full satisfaction and must terminate.
	s := pathScenario(t, nil, []graph.EdgeID{1}, 50)
	plan, _, err := Solve(context.Background(), s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.SatisfactionRatio() > 0.5 {
		t.Errorf("satisfaction = %f, want <= 0.2 (10 of 50 units)", plan.SatisfactionRatio())
	}
	verifyPlan(t, s, plan)
}

func TestISPInvalidScenario(t *testing.T) {
	if _, _, err := Solve(context.Background(), &scenario.Scenario{}, Options{}); err == nil {
		t.Error("expected error for invalid scenario")
	}
}

func TestISPIterationLimit(t *testing.T) {
	s := gridScenario(t, 3, 20, true, []float64{10, 10})
	plan, stats, err := Solve(context.Background(), s, Options{MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.HitIteration {
		t.Errorf("expected iteration limit to trigger, stats = %+v", stats)
	}
	if plan == nil {
		t.Fatal("expected a (partial) plan")
	}
	verifyPlan(t, s, plan)
}

func TestISPMultipleDemandsBellCanadaSubset(t *testing.T) {
	// A light Bell-Canada scenario exercising the real topology with a
	// geographic disruption; kept small (2 pairs, moderate flow) so the test
	// stays fast while covering the full pipeline end to end.
	g := topology.BellCanada()
	rng := rand.New(rand.NewSource(42))
	d := disruption.Geographic(g, disruption.GeographicConfig{Auto: true, Variance: 20, PeakProbability: 1}, rng)
	dg, err := demand.GenerateFarApartPairs(g, 2, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	s := &scenario.Scenario{Supply: g, Demand: dg, BrokenNodes: d.Nodes, BrokenEdges: d.Edges}
	plan, stats, err := Solve(context.Background(), s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.SatisfactionRatio() < 1-1e-9 {
		t.Errorf("satisfaction = %f, want 1 (stats %+v)", plan.SatisfactionRatio(), stats)
	}
	if _, _, total := plan.NumRepairs(); total > d.Total() {
		t.Errorf("repairs %d exceed number of broken elements %d", total, d.Total())
	}
	verifyPlan(t, s, plan)
}

func TestISPDeliveredDemandComputation(t *testing.T) {
	s := pathScenario(t, nil, nil, 5)
	plan, _, err := Solve(context.Background(), s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.SatisfiedDemand-5) > 1e-6 {
		t.Errorf("SatisfiedDemand = %f, want 5", plan.SatisfiedDemand)
	}
	if math.Abs(plan.TotalDemand-5) > 1e-6 {
		t.Errorf("TotalDemand = %f, want 5", plan.TotalDemand)
	}
}

func TestISPRoutabilityModesAgree(t *testing.T) {
	s := gridScenario(t, 3, 20, true, []float64{10})
	exact, _, err := Solve(context.Background(), s.Clone(), Options{Routability: flow.Options{Mode: flow.ModeExact}})
	if err != nil {
		t.Fatal(err)
	}
	constructive, _, err := Solve(context.Background(), s.Clone(), Options{Routability: flow.Options{Mode: flow.ModeConstructive}})
	if err != nil {
		t.Fatal(err)
	}
	if exact.SatisfactionRatio() < 1-1e-9 || constructive.SatisfactionRatio() < 1-1e-9 {
		t.Error("both modes must fully satisfy the demand")
	}
	_, _, exactTotal := exact.NumRepairs()
	_, _, consTotal := constructive.NumRepairs()
	if consTotal < exactTotal {
		t.Logf("constructive mode repaired fewer elements (%d < %d)", consTotal, exactTotal)
	}
}
