package core

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"netrecovery/internal/demand"
	"netrecovery/internal/disruption"
	"netrecovery/internal/graph"
	"netrecovery/internal/scenario"
	"netrecovery/internal/topology"
)

func TestISPDisconnectedDemandIsPartial(t *testing.T) {
	// Two separate components; one demand inside the first component (fully
	// servable after repairs), one across components (impossible).
	g := graph.New(4, 2)
	for i := 0; i < 4; i++ {
		g.AddNode("", float64(i), 0, 1)
	}
	g.MustAddEdge(0, 1, 10, 1)
	g.MustAddEdge(2, 3, 10, 1)
	dg := demand.New()
	dg.MustAdd(0, 1, 5) // servable
	dg.MustAdd(0, 3, 5) // crosses components: impossible
	d := disruption.Complete(g)
	s := &scenario.Scenario{Supply: g, Demand: dg, BrokenNodes: d.Nodes, BrokenEdges: d.Edges}

	plan, stats, err := Solve(context.Background(), s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.SatisfactionRatio() > 0.5+1e-9 || plan.SatisfactionRatio() < 0.5-1e-9 {
		t.Errorf("satisfaction = %f, want exactly 0.5 (one of two demands)", plan.SatisfactionRatio())
	}
	if stats.FinalRouted {
		t.Error("the run cannot terminate normally with an unroutable demand")
	}
	if err := scenario.VerifyPlan(s, plan); err != nil {
		t.Errorf("verify: %v", err)
	}
}

func TestISPZeroDemandScenario(t *testing.T) {
	g, err := topology.Grid(2, 2, topology.DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	d := disruption.Complete(g)
	s := &scenario.Scenario{Supply: g, Demand: demand.New(), BrokenNodes: d.Nodes, BrokenEdges: d.Edges}
	plan, stats, err := Solve(context.Background(), s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, total := plan.NumRepairs(); total != 0 {
		t.Errorf("repairs = %d, want 0 with no demand", total)
	}
	if !stats.FinalRouted {
		t.Error("empty demand should terminate immediately")
	}
}

func TestISPParallelEdgesBetweenEndpoints(t *testing.T) {
	// Two parallel broken edges between the demand endpoints with different
	// capacities: ISP must repair at least the capacity needed, and the
	// direct-link rule must pick a usable edge.
	g := graph.New(2, 2)
	g.AddNode("", 0, 0, 1)
	g.AddNode("", 1, 0, 1)
	small := g.MustAddEdge(0, 1, 3, 1)
	big := g.MustAddEdge(0, 1, 10, 1)
	dg := demand.New()
	dg.MustAdd(0, 1, 8)
	s := &scenario.Scenario{
		Supply:      g,
		Demand:      dg,
		BrokenNodes: map[graph.NodeID]bool{},
		BrokenEdges: map[graph.EdgeID]bool{small: true, big: true},
	}
	plan, _, err := Solve(context.Background(), s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.SatisfactionRatio() < 1-1e-9 {
		t.Errorf("satisfaction = %f, want 1", plan.SatisfactionRatio())
	}
	if !plan.RepairedEdges[big] {
		t.Error("the 10-unit edge must be repaired to carry 8 units")
	}
	if err := scenario.VerifyPlan(s, plan); err != nil {
		t.Errorf("verify: %v", err)
	}
}

// Property: on random partially-destroyed grids with feasible demand, ISP
// always produces a verifiable plan, never loses demand, and never repairs
// more than what was broken.
func TestISPRandomGridProperty(t *testing.T) {
	g, err := topology.Grid(4, 4, topology.DefaultConfig(25))
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := disruption.Random(g, 0.35, 0.35, rng)
		dg := demand.New()
		dg.MustAdd(0, 15, 10)
		dg.MustAdd(3, 12, 10)
		s := &scenario.Scenario{Supply: g.Clone(), Demand: dg, BrokenNodes: d.Nodes, BrokenEdges: d.Edges}
		plan, _, err := Solve(context.Background(), s, Options{SplitMode: SplitGreedy})
		if err != nil {
			return false
		}
		if err := scenario.VerifyPlan(s, plan); err != nil {
			t.Logf("seed %d: invalid plan: %v", seed, err)
			return false
		}
		if plan.SatisfactionRatio() < 1-1e-9 {
			t.Logf("seed %d: demand loss %f", seed, plan.SatisfactionRatio())
			return false
		}
		nodes, edges, _ := plan.NumRepairs()
		return nodes <= len(d.Nodes) && edges <= len(d.Edges)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: ISP's repair cost is monotone non-decreasing in the demand
// volume on a fixed disruption (more demand can never need fewer repairs on
// the same instance, up to heuristic noise which this test tolerates by
// comparing the extreme points only).
func TestISPMonotoneInDemand(t *testing.T) {
	g := topology.BellCanada()
	rng := rand.New(rand.NewSource(3))
	d := disruption.Geographic(g, disruption.GeographicConfig{Auto: true, Variance: 60, PeakProbability: 1}, rng)
	run := func(flow float64) float64 {
		dg, err := demand.GenerateFarApartPairs(g, 3, flow, rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatal(err)
		}
		s := &scenario.Scenario{Supply: g.Clone(), Demand: dg, BrokenNodes: d.Nodes, BrokenEdges: d.Edges}
		plan, _, err := Solve(context.Background(), s, Options{SplitMode: SplitGreedy})
		if err != nil {
			t.Fatal(err)
		}
		if err := scenario.VerifyPlan(s, plan); err != nil {
			t.Fatalf("verify: %v", err)
		}
		return plan.RepairCost(s)
	}
	low := run(2)
	high := run(18)
	if high+1e-9 < low {
		t.Errorf("repair cost decreased when demand grew: %f -> %f", low, high)
	}
}
