package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"netrecovery/internal/demand"
	"netrecovery/internal/disruption"
	"netrecovery/internal/flow"
	"netrecovery/internal/graph"
	"netrecovery/internal/scenario"
	"netrecovery/internal/topology"
)

// equivalenceScenario builds the invariants-test topologies (Bell-Canada,
// 4x4 grid, 16-node Erdős–Rényi) with far-apart demands and a geographic
// disruption, mirroring the cross-algorithm invariants suite at the root of
// the repository.
func equivalenceScenario(t *testing.T, topo string, seed int64) *scenario.Scenario {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var (
		g   *graph.Graph
		err error
	)
	switch topo {
	case "bell-canada":
		g = topology.BellCanada()
	case "grid":
		g, err = topology.Grid(4, 4, topology.DefaultConfig(20))
	case "erdos-renyi":
		g, err = topology.ErdosRenyi(16, 0.3, topology.DefaultConfig(20), rng)
	default:
		t.Fatalf("unknown topology %q", topo)
	}
	if err != nil {
		t.Fatal(err)
	}
	dg, err := demand.GenerateFarApartPairs(g, 2, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	d := disruption.Geographic(g, disruption.GeographicConfig{Auto: true, Variance: 30, PeakProbability: 1}, rng)
	return &scenario.Scenario{Supply: g, Demand: dg, BrokenNodes: d.Nodes, BrokenEdges: d.Edges}
}

// TestISPSparseMatchesDenseLP runs full ISP (exact routability, exact
// splits) with the sparse warm-started LP solver and with the legacy dense
// tableau on the invariants topologies, and requires the same objectives:
// identical repaired sets and satisfied demand within 1e-6. The two solvers
// may return different optimal routings (alternative optima), but every
// repair/split/prune decision is driven by LP answers that are unique at the
// optimum, so the plans must agree.
func TestISPSparseMatchesDenseLP(t *testing.T) {
	ctx := context.Background()
	for _, topo := range []string{"bell-canada", "grid", "erdos-renyi"} {
		for seed := int64(1); seed <= 3; seed++ {
			sparsePlan, _, err := Solve(ctx, equivalenceScenario(t, topo, seed),
				Options{Routability: flow.Options{Mode: flow.ModeExact}})
			if err != nil {
				t.Fatalf("%s/%d sparse: %v", topo, seed, err)
			}
			densePlan, _, err := Solve(ctx, equivalenceScenario(t, topo, seed),
				Options{Routability: flow.Options{Mode: flow.ModeExact, DenseLP: true}})
			if err != nil {
				t.Fatalf("%s/%d dense: %v", topo, seed, err)
			}
			if math.Abs(sparsePlan.SatisfiedDemand-densePlan.SatisfiedDemand) > 1e-6 {
				t.Errorf("%s/%d: satisfied demand sparse=%.9f dense=%.9f",
					topo, seed, sparsePlan.SatisfiedDemand, densePlan.SatisfiedDemand)
			}
			if len(sparsePlan.RepairedNodes) != len(densePlan.RepairedNodes) ||
				len(sparsePlan.RepairedEdges) != len(densePlan.RepairedEdges) {
				t.Errorf("%s/%d: repairs sparse=(%d nodes, %d edges) dense=(%d nodes, %d edges)",
					topo, seed,
					len(sparsePlan.RepairedNodes), len(sparsePlan.RepairedEdges),
					len(densePlan.RepairedNodes), len(densePlan.RepairedEdges))
			}
			for v := range densePlan.RepairedNodes {
				if !sparsePlan.RepairedNodes[v] {
					t.Errorf("%s/%d: node %d repaired by dense but not sparse", topo, seed, v)
				}
			}
			for e := range densePlan.RepairedEdges {
				if !sparsePlan.RepairedEdges[e] {
					t.Errorf("%s/%d: edge %d repaired by dense but not sparse", topo, seed, e)
				}
			}
		}
	}
}
