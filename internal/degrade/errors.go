// Package degrade implements the serving stack's graceful-degradation
// toolkit: typed panic errors, bounded retry with deterministic jittered
// backoff, a per-resource circuit breaker, and a deadline-budgeted fallback
// chain that runs a request through ordered stages (exact solve → cheaper
// heuristic → stale-but-served cache entry), each with a slice of the
// request deadline.
package degrade

import (
	"errors"
	"fmt"
)

// PanicError is a solver (or cache-leader) panic converted into a value at
// the recovery boundary. It carries the operation that panicked, the
// recovered value, and the goroutine stack captured at recovery time so the
// failure is diagnosable without crashing the process or stranding
// coalesced waiters.
type PanicError struct {
	Op    string // operation that panicked, e.g. "solver:OPT"
	Value any    // value passed to panic()
	Stack []byte // stack captured by the recovering goroutine
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("%s: panic: %v", e.Op, e.Value)
}

// Recovered wraps a recovered panic value into a *PanicError. Callers use
// it inside a deferred recover block:
//
//	defer func() {
//		if r := recover(); r != nil {
//			err = degrade.Recovered("solver:OPT", r, debug.Stack())
//		}
//	}()
func Recovered(op string, r any, stack []byte) *PanicError {
	return &PanicError{Op: op, Value: r, Stack: stack}
}

// IsPanic reports whether err wraps a recovered panic.
func IsPanic(err error) bool {
	var pe *PanicError
	return errors.As(err, &pe)
}

// transient is implemented by errors that are safe to retry (injected
// faults, shard hiccups). Declared structurally so fault-injection and
// cache packages need not import degrade to participate.
type transient interface {
	Transient() bool
}

// IsTransient reports whether err (or an error in its chain) declares
// itself retryable via a `Transient() bool` method. Recovered panics are
// never transient: a panicking solver is a bug, not a blip.
func IsTransient(err error) bool {
	for e := err; e != nil; e = errors.Unwrap(e) {
		if t, ok := e.(transient); ok {
			return t.Transient()
		}
	}
	return false
}

// ErrExhausted marks a fallback chain that ran out of stages without
// producing a plan. The chain's Execute joins it with the last stage error
// so callers can both classify (errors.Is) and diagnose.
var ErrExhausted = errors.New("degrade: all fallback stages exhausted")

// ErrBreakerOpen is returned (wrapped, naming the resource) when a circuit
// breaker refuses a request without attempting it.
var ErrBreakerOpen = errors.New("degrade: circuit breaker open")

// BreakerOpenError carries the breaker's resource name and the remaining
// cooldown hint for Retry-After headers. It wraps ErrBreakerOpen.
type BreakerOpenError struct {
	Resource   string
	RetryAfter float64 // seconds until a half-open probe will be admitted
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("degrade: circuit breaker open for %q", e.Resource)
}

func (e *BreakerOpenError) Unwrap() error { return ErrBreakerOpen }
