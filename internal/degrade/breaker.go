package degrade

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed admits every request (normal operation).
	BreakerClosed BreakerState = iota
	// BreakerOpen refuses every request until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits a single probe; its outcome decides
	// between Closed and another Open period.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half_open"
	}
	return "unknown"
}

// BreakerConfig tunes a Breaker. Zero values pick the documented defaults.
type BreakerConfig struct {
	// Window is the size of the sliding outcome window consulted by the
	// failure-ratio trip condition. Default 16.
	Window int
	// MinSamples is the minimum number of recorded outcomes in the
	// window before the ratio condition can trip. Default 8.
	MinSamples int
	// FailureRatio trips the breaker when failures/window ≥ ratio (and
	// MinSamples is met). Default 0.5.
	FailureRatio float64
	// ConsecutiveFailures trips the breaker regardless of the window
	// when this many failures arrive back to back. Default 5.
	ConsecutiveFailures int
	// Cooldown is how long an Open breaker refuses requests before
	// admitting a half-open probe. Default 5s.
	Cooldown time.Duration
	// Now is the clock; nil means time.Now. Tests inject a fake.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.FailureRatio <= 0 {
		c.FailureRatio = 0.5
	}
	if c.ConsecutiveFailures <= 0 {
		c.ConsecutiveFailures = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// BreakerStats is a point-in-time snapshot of a breaker's counters,
// exported on /metrics.
type BreakerStats struct {
	State     BreakerState
	Opens     uint64 // transitions into Open
	HalfOpens uint64 // transitions into HalfOpen
	Closes    uint64 // recoveries into Closed (after at least one Open)
	Successes uint64 // outcomes recorded as success
	Failures  uint64 // outcomes recorded as failure
}

// Breaker is a per-resource circuit breaker: it trips Open on sustained
// failures, refuses requests for a cooldown, then admits a single
// half-open probe whose outcome decides between recovery and another
// Open period. All methods are safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu          sync.Mutex
	state       BreakerState
	window      []bool // ring of outcomes, true = failure
	windowIdx   int
	windowFill  int
	consecutive int
	openedAt    time.Time
	probing     bool // half-open probe currently reserved
	stats       BreakerStats
}

// NewBreaker builds a breaker with cfg (zero fields defaulted).
func NewBreaker(cfg BreakerConfig) *Breaker {
	c := cfg.withDefaults()
	return &Breaker{cfg: c, window: make([]bool, c.Window)}
}

// Allow reports whether a request may proceed. In the Open state it flips
// to HalfOpen once the cooldown has elapsed and admits exactly one probe;
// every Allow=true in the HalfOpen state reserves the probe, so callers
// MUST pair it with a Record call, or the breaker stays probing forever.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.stats.HalfOpens++
		b.probing = true
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return true
}

// Blocked reports whether the breaker would currently refuse a request,
// without reserving a probe. The fallback chain uses it for Skip checks;
// it never mutates state, so a half-open probe slot is not consumed.
func (b *Breaker) Blocked() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		return b.cfg.Now().Sub(b.openedAt) < b.cfg.Cooldown
	case BreakerHalfOpen:
		return b.probing
	}
	return false
}

// RetryAfter returns how long until an Open breaker admits a probe
// (zero when not refusing).
func (b *Breaker) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		return 0
	}
	rem := b.cfg.Cooldown - b.cfg.Now().Sub(b.openedAt)
	if rem < 0 {
		return 0
	}
	return rem
}

// Record feeds an outcome back. Success in HalfOpen closes the breaker;
// failure re-opens it. In Closed, failures trip the breaker when either
// the consecutive-failure count or the windowed failure ratio condition
// fires.
func (b *Breaker) Record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if success {
		b.stats.Successes++
	} else {
		b.stats.Failures++
	}
	switch b.state {
	case BreakerHalfOpen:
		b.probing = false
		if success {
			b.toClosedLocked()
		} else {
			b.toOpenLocked()
		}
	case BreakerClosed:
		b.window[b.windowIdx] = !success
		b.windowIdx = (b.windowIdx + 1) % len(b.window)
		if b.windowFill < len(b.window) {
			b.windowFill++
		}
		if success {
			b.consecutive = 0
			return
		}
		b.consecutive++
		if b.consecutive >= b.cfg.ConsecutiveFailures {
			b.toOpenLocked()
			return
		}
		if b.windowFill >= b.cfg.MinSamples {
			fails := 0
			for i := 0; i < b.windowFill; i++ {
				if b.window[i] {
					fails++
				}
			}
			if float64(fails) >= b.cfg.FailureRatio*float64(b.windowFill) {
				b.toOpenLocked()
			}
		}
	case BreakerOpen:
		// A Record while Open can only come from a request admitted
		// before the trip; it carries no new admission decision.
	}
}

// Cancel releases an admission obtained from Allow without recording an
// outcome — the request was abandoned (client disconnect) before the
// resource could prove or disprove itself. A reserved half-open probe is
// returned so the next Allow can re-probe; in other states it is a no-op.
func (b *Breaker) Cancel() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.probing = false
	}
}

func (b *Breaker) toOpenLocked() {
	b.state = BreakerOpen
	b.openedAt = b.cfg.Now()
	b.stats.Opens++
	b.probing = false
	b.resetWindowLocked()
}

func (b *Breaker) toClosedLocked() {
	b.state = BreakerClosed
	b.stats.Closes++
	b.resetWindowLocked()
}

func (b *Breaker) resetWindowLocked() {
	for i := range b.window {
		b.window[i] = false
	}
	b.windowIdx, b.windowFill, b.consecutive = 0, 0, 0
}

// State returns the current state (Open flips to the reported state only
// via Allow/Blocked, so a cooled-down Open breaker still reports Open
// here until probed).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Snapshot returns the breaker's counters.
func (b *Breaker) Snapshot() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.stats
	s.State = b.state
	return s
}
