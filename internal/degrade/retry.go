package degrade

import (
	"context"
	"time"
)

// splitmix64 is the repo-wide deterministic PRNG step (same constants as
// internal/ensemble's sample streams): a full-period 64-bit mixer whose
// output sequence depends only on the seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RetryPolicy bounds re-attempts of a transient failure with jittered
// exponential backoff. The jitter stream is seeded, and the sleeper is
// injectable, so tests (and the chaos suite) are fully deterministic.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts (first try included).
	// Zero or negative means 1: no retries.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each subsequent
	// retry doubles it, capped at MaxBackoff. Defaults 10ms / 250ms.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed keys the jitter stream. The n-th retry sleeps
	// backoff/2 + u·backoff/2 where u is drawn from splitmix64(seed, n).
	Seed uint64
	// Sleep is called to wait between attempts; nil means a
	// context-aware real sleep. Tests inject a recorder.
	Sleep func(ctx context.Context, d time.Duration) error
	// OnRetry, if set, observes each scheduled retry (attempt number
	// starting at 1, the error being retried). Used for metrics.
	OnRetry func(attempt int, err error)
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

func (p RetryPolicy) backoff(retry int) time.Duration {
	base := p.BaseBackoff
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	max := p.MaxBackoff
	if max <= 0 {
		max = 250 * time.Millisecond
	}
	d := base << uint(retry)
	if d > max || d <= 0 {
		d = max
	}
	// Half fixed, half jittered: never less than d/2, never more than d.
	u := splitmix64(p.Seed ^ uint64(retry)*0x9e3779b97f4a7c15)
	jitter := time.Duration(u % uint64(d/2+1))
	return d/2 + jitter
}

func defaultSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Retry runs fn up to MaxAttempts times, sleeping a jittered backoff
// between attempts. Only transient errors (IsTransient) are retried;
// success, permanent errors, and context death end the loop immediately.
// It returns the number of attempts made alongside the final error.
func (p RetryPolicy) Retry(ctx context.Context, fn func() error) (attempts int, err error) {
	sleep := p.Sleep
	if sleep == nil {
		sleep = defaultSleep
	}
	max := p.attempts()
	for attempts = 1; ; attempts++ {
		err = fn()
		if err == nil || !IsTransient(err) || attempts >= max {
			return attempts, err
		}
		if ctx.Err() != nil {
			return attempts, err
		}
		if p.OnRetry != nil {
			p.OnRetry(attempts, err)
		}
		if serr := sleep(ctx, p.backoff(attempts-1)); serr != nil {
			return attempts, err
		}
	}
}
