package degrade

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"testing"
	"time"

	"netrecovery/internal/scenario"
)

type transientErr struct{ msg string }

func (e transientErr) Error() string   { return e.msg }
func (e transientErr) Transient() bool { return true }

func TestPanicErrorClassification(t *testing.T) {
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = Recovered("solver:TEST", r, debug.Stack())
			}
		}()
		panic("boom")
	}()
	if !IsPanic(err) {
		t.Fatalf("IsPanic = false for %v", err)
	}
	if IsTransient(err) {
		t.Fatal("a recovered panic must not be transient")
	}
	wrapped := fmt.Errorf("outer: %w", err)
	if !IsPanic(wrapped) {
		t.Fatal("IsPanic must see through wrapping")
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Op != "solver:TEST" || len(pe.Stack) == 0 {
		t.Fatalf("bad PanicError: %+v", pe)
	}
}

func TestIsTransient(t *testing.T) {
	if IsTransient(errors.New("plain")) {
		t.Fatal("plain error is not transient")
	}
	if !IsTransient(transientErr{"inj"}) {
		t.Fatal("transientErr must be transient")
	}
	if !IsTransient(fmt.Errorf("wrap: %w", transientErr{"inj"})) {
		t.Fatal("wrapped transient must be transient")
	}
	if IsTransient(nil) {
		t.Fatal("nil is not transient")
	}
}

func TestRetryOnlyTransient(t *testing.T) {
	var sleeps []time.Duration
	p := RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  80 * time.Millisecond,
		Seed:        42,
		Sleep: func(_ context.Context, d time.Duration) error {
			sleeps = append(sleeps, d)
			return nil
		},
	}

	calls := 0
	attempts, err := p.Retry(context.Background(), func() error {
		calls++
		if calls < 3 {
			return transientErr{"flaky"}
		}
		return nil
	})
	if err != nil || attempts != 3 || calls != 3 {
		t.Fatalf("attempts=%d calls=%d err=%v", attempts, calls, err)
	}
	if len(sleeps) != 2 {
		t.Fatalf("sleeps = %v, want 2 entries", sleeps)
	}
	for i, d := range sleeps {
		base := 10 * time.Millisecond << uint(i)
		if d < base/2 || d > base {
			t.Fatalf("sleep %d = %v outside [%v,%v]", i, d, base/2, base)
		}
	}

	// Permanent errors end the loop immediately.
	calls = 0
	perm := errors.New("permanent")
	attempts, err = p.Retry(context.Background(), func() error { calls++; return perm })
	if !errors.Is(err, perm) || attempts != 1 || calls != 1 {
		t.Fatalf("permanent: attempts=%d calls=%d err=%v", attempts, calls, err)
	}

	// Exhaustion returns the last transient error.
	calls = 0
	attempts, err = p.Retry(context.Background(), func() error { calls++; return transientErr{"always"} })
	if attempts != 3 || calls != 3 || !IsTransient(err) {
		t.Fatalf("exhaustion: attempts=%d calls=%d err=%v", attempts, calls, err)
	}
}

func TestRetryJitterDeterministic(t *testing.T) {
	run := func() []time.Duration {
		var sleeps []time.Duration
		p := RetryPolicy{
			MaxAttempts: 4,
			Seed:        7,
			Sleep: func(_ context.Context, d time.Duration) error {
				sleeps = append(sleeps, d)
				return nil
			},
		}
		p.Retry(context.Background(), func() error { return transientErr{"x"} })
		return sleeps
	}
	a, b := run(), run()
	if len(a) != 3 {
		t.Fatalf("want 3 sleeps, got %v", a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jitter not deterministic: %v vs %v", a, b)
		}
	}
}

func TestRetryStopsOnContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := RetryPolicy{
		MaxAttempts: 5,
		Sleep:       defaultSleep,
		BaseBackoff: time.Hour, // the context must end the sleep, not the timer
	}
	calls := 0
	start := time.Now()
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	attempts, err := p.Retry(ctx, func() error { calls++; return transientErr{"x"} })
	if time.Since(start) > 5*time.Second {
		t.Fatal("retry did not honor context cancellation")
	}
	if attempts != 1 || calls != 1 || !IsTransient(err) {
		t.Fatalf("attempts=%d calls=%d err=%v", attempts, calls, err)
	}
}

func TestBreakerConsecutiveTripAndRecovery(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewBreaker(BreakerConfig{
		ConsecutiveFailures: 3,
		Cooldown:            5 * time.Second,
		Now:                 func() time.Time { return now },
	})
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.Record(false)
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request inside cooldown")
	}
	if ra := b.RetryAfter(); ra != 5*time.Second {
		t.Fatalf("RetryAfter = %v", ra)
	}

	// Cooldown elapses: exactly one probe is admitted.
	now = now.Add(5 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half_open", b.State())
	}
	if b.Allow() {
		t.Fatal("second request admitted while probe in flight")
	}
	if !b.Blocked() {
		t.Fatal("Blocked must report true while the probe is reserved")
	}

	// Probe fails: back to open, new cooldown.
	b.Record(false)
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatal("failed probe must re-open the breaker")
	}

	// Next probe succeeds: closed.
	now = now.Add(5 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the second probe")
	}
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed", b.State())
	}
	if b.Blocked() {
		t.Fatal("closed breaker must not report blocked")
	}
	s := b.Snapshot()
	if s.Opens != 2 || s.HalfOpens != 2 || s.Closes != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestBreakerRatioTrip(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(BreakerConfig{
		Window:              8,
		MinSamples:          8,
		FailureRatio:        0.5,
		ConsecutiveFailures: 100, // keep the consecutive condition out of the way
		Now:                 func() time.Time { return now },
	})
	// Alternate success/failure: at the 8th sample the ratio hits 0.5.
	for i := 0; i < 8; i++ {
		if b.State() != BreakerClosed {
			t.Fatalf("tripped early at i=%d", i)
		}
		b.Record(i%2 == 0)
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open after 50%% failures", b.State())
	}
}

func TestBreakerBlockedDoesNotConsumeProbe(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(BreakerConfig{
		ConsecutiveFailures: 1,
		Cooldown:            time.Second,
		Now:                 func() time.Time { return now },
	})
	b.Record(false)
	now = now.Add(time.Second)
	if b.Blocked() {
		t.Fatal("cooled-down breaker must not report blocked")
	}
	// Blocked must not have flipped to half-open or reserved the probe.
	if !b.Allow() {
		t.Fatal("probe must still be available after Blocked")
	}
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v", b.State())
	}
}

func planWithCost(c float64) *scenario.Plan {
	return &scenario.Plan{Solver: "TEST", SatisfiedDemand: c}
}

func TestExecutePrimaryServes(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	res, err := Execute(context.Background(), []Stage{
		{Name: "opt", Level: LevelNone, Fraction: 0.6, Run: func(ctx context.Context) (*scenario.Plan, error) {
			now = now.Add(10 * time.Millisecond)
			return planWithCost(1), nil
		}},
		{Name: "fallback_isp", Level: LevelFallback, Run: func(ctx context.Context) (*scenario.Plan, error) {
			t.Fatal("fallback must not run when primary serves")
			return nil, nil
		}},
	}, Options{Deadline: 100 * time.Millisecond, Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	if res.Level != LevelNone || res.ServedBy != "opt" {
		t.Fatalf("res = %+v", res)
	}
	if len(res.Stages) != 1 || res.Stages[0].Outcome != OutcomeServed || res.Stages[0].Elapsed != 10*time.Millisecond {
		t.Fatalf("stages = %+v", res.Stages)
	}
}

func TestExecuteFallsThroughOnTimeout(t *testing.T) {
	res, err := Execute(context.Background(), []Stage{
		{Name: "opt", Level: LevelNone, Fraction: 0.3, Run: func(ctx context.Context) (*scenario.Plan, error) {
			<-ctx.Done() // simulate a solve that honors its deadline slice
			return nil, ctx.Err()
		}},
		{Name: "fallback_isp", Level: LevelFallback, Run: func(ctx context.Context) (*scenario.Plan, error) {
			if _, ok := ctx.Deadline(); !ok {
				t.Error("fallback stage must carry the remaining deadline")
			}
			return planWithCost(2), nil
		}},
	}, Options{Deadline: 60 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Level != LevelFallback || res.ServedBy != "fallback_isp" {
		t.Fatalf("res = %+v", res)
	}
	if res.Stages[0].Outcome != OutcomeTimeout {
		t.Fatalf("stage0 = %+v", res.Stages[0])
	}
}

func TestExecuteSkipAndStale(t *testing.T) {
	stale := planWithCost(3)
	res, err := Execute(context.Background(), []Stage{
		{Name: "opt", Level: LevelNone, Skip: func() string { return "breaker open" }},
		{Name: "fallback_isp", Level: LevelFallback, Run: func(ctx context.Context) (*scenario.Plan, error) {
			return nil, errors.New("solver exploded")
		}},
		{Name: "stale_cache", Level: LevelStale, Free: true, Run: func(ctx context.Context) (*scenario.Plan, error) {
			return stale, nil
		}},
	}, Options{Deadline: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Level != LevelStale || res.Plan != stale {
		t.Fatalf("res = %+v", res)
	}
	want := []string{OutcomeSkipped, OutcomeError, OutcomeServed}
	for i, o := range want {
		if res.Stages[i].Outcome != o {
			t.Fatalf("stage %d outcome = %q, want %q", i, res.Stages[i].Outcome, o)
		}
	}
}

func TestExecuteFreeStageRunsAfterDeadline(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	stale := planWithCost(4)
	res, err := Execute(context.Background(), []Stage{
		{Name: "opt", Level: LevelNone, Run: func(ctx context.Context) (*scenario.Plan, error) {
			now = now.Add(time.Second) // blow the whole budget
			return nil, context.DeadlineExceeded
		}},
		{Name: "fallback_isp", Level: LevelFallback, Run: func(ctx context.Context) (*scenario.Plan, error) {
			t.Fatal("non-free stage must not run after the budget is spent")
			return nil, nil
		}},
		{Name: "stale_cache", Level: LevelStale, Free: true, Run: func(ctx context.Context) (*scenario.Plan, error) {
			return stale, nil
		}},
	}, Options{Deadline: 100 * time.Millisecond, Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	if res.Level != LevelStale {
		t.Fatalf("res = %+v", res)
	}
	if res.Stages[1].Outcome != OutcomeTimeout {
		t.Fatalf("fallback stage = %+v", res.Stages[1])
	}
}

func TestExecuteExhaustion(t *testing.T) {
	boom := errors.New("boom")
	res, err := Execute(context.Background(), []Stage{
		{Name: "opt", Level: LevelNone, Run: func(ctx context.Context) (*scenario.Plan, error) {
			return nil, boom
		}},
		{Name: "stale_cache", Level: LevelStale, Free: true, Run: func(ctx context.Context) (*scenario.Plan, error) {
			return nil, nil // stale miss
		}},
	}, Options{Deadline: 50 * time.Millisecond})
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	if res == nil || len(res.Stages) != 2 || res.Plan != nil {
		t.Fatalf("res = %+v", res)
	}
	if res.Stages[1].Outcome != OutcomeUnavailable {
		t.Fatalf("stale stage = %+v", res.Stages[1])
	}
}

func TestExecuteRetriesTransient(t *testing.T) {
	calls := 0
	res, err := Execute(context.Background(), []Stage{
		{Name: "opt", Level: LevelNone, Retry: true, Run: func(ctx context.Context) (*scenario.Plan, error) {
			calls++
			if calls < 3 {
				return nil, transientErr{"injected"}
			}
			return planWithCost(1), nil
		}},
	}, Options{
		Deadline: time.Second,
		Retry: RetryPolicy{
			MaxAttempts: 3,
			Sleep:       func(context.Context, time.Duration) error { return nil },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 2 || res.Stages[0].Attempts != 3 || res.Level != LevelNone {
		t.Fatalf("res = %+v stages=%+v", res, res.Stages[0])
	}
}

func TestExecuteAbortsOnParentCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	_, err := Execute(ctx, []Stage{
		{Name: "opt", Level: LevelNone, Run: func(sctx context.Context) (*scenario.Plan, error) {
			cancel()
			<-sctx.Done()
			return nil, sctx.Err()
		}},
		{Name: "stale_cache", Level: LevelStale, Free: true, Run: func(context.Context) (*scenario.Plan, error) {
			t.Fatal("no stage may run after the parent context dies")
			return nil, nil
		}},
	}, Options{Deadline: time.Second})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestBreakerCancelReturnsProbe: an abandoned half-open probe (client
// disconnect) is returned by Cancel so the next Allow can re-probe, without
// recording an outcome; Cancel in the closed state is a no-op.
func TestBreakerCancelReturnsProbe(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewBreaker(BreakerConfig{
		ConsecutiveFailures: 1,
		Cooldown:            5 * time.Second,
		Now:                 func() time.Time { return now },
	})

	// Closed: Cancel records nothing and changes nothing.
	if !b.Allow() {
		t.Fatal("closed breaker refused a request")
	}
	b.Cancel()
	if b.State() != BreakerClosed {
		t.Fatalf("state after closed-state Cancel = %v", b.State())
	}
	if s := b.Snapshot(); s.Successes != 0 || s.Failures != 0 {
		t.Fatalf("Cancel must not record an outcome: %+v", s)
	}

	// Trip, cool down, reserve the probe — then abandon it.
	if !b.Allow() {
		t.Fatal("closed breaker refused a request")
	}
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	now = now.Add(5 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe")
	}
	if b.Allow() {
		t.Fatal("second request admitted while probe reserved")
	}
	b.Cancel()

	// The returned probe is immediately re-admittable and can still close
	// the breaker.
	if !b.Allow() {
		t.Fatal("breaker refused re-probe after Cancel")
	}
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed after successful re-probe", b.State())
	}
}
