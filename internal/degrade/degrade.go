package degrade

import (
	"context"
	"errors"
	"strconv"
	"time"

	"netrecovery/internal/obs"
	"netrecovery/internal/scenario"
)

// Level classifies how degraded a served plan is.
type Level int

const (
	// LevelNone: the primary (requested) stage produced the plan.
	LevelNone Level = iota
	// LevelFallback: a cheaper solver stage produced the plan.
	LevelFallback
	// LevelStale: an expired cache entry was served.
	LevelStale
)

func (l Level) String() string {
	switch l {
	case LevelNone:
		return "none"
	case LevelFallback:
		return "fallback"
	case LevelStale:
		return "stale"
	}
	return "unknown"
}

// Stage outcome strings, pinned by the wire schema and golden tests.
const (
	OutcomeServed      = "served"      // stage produced the plan
	OutcomeTimeout     = "timeout"     // stage exceeded its deadline slice
	OutcomeError       = "error"       // stage failed with a non-deadline error
	OutcomeSkipped     = "skipped"     // stage declined to run (breaker open, no cache)
	OutcomeUnavailable = "unavailable" // stage had nothing to serve (stale miss)
)

// Stage is one rung of the fallback chain.
type Stage struct {
	// Name labels the stage in wire timings and metrics ("opt",
	// "fallback_isp", "stale_cache").
	Name string
	// Level is the degradation level a plan served by this stage carries.
	Level Level
	// Fraction of the overall deadline granted to this stage. Zero means
	// "all remaining time". Free stages ignore the deadline entirely.
	Fraction float64
	// Retry enables the chain-level retry policy for this stage
	// (solver stages retry transient faults; cache lookups don't need to).
	Retry bool
	// Free marks a stage with no meaningful cost (stale-cache lookup):
	// it runs with the parent context even after the overall deadline has
	// been consumed, so a stale entry can still be served at the edge.
	Free bool
	// Skip, if non-nil and returning a non-empty reason, marks the stage
	// skipped without running it (circuit breaker open, cache disabled).
	Skip func() string
	// Run executes the stage under its deadline slice.
	Run func(ctx context.Context) (*scenario.Plan, error)
}

// StageResult records one stage's outcome for wire timings.
type StageResult struct {
	Name     string
	Outcome  string
	Attempts int
	Elapsed  time.Duration
	Err      error
}

// Result is a successful chain execution.
type Result struct {
	Plan     *scenario.Plan
	Level    Level
	ServedBy string
	Stages   []StageResult
	Retries  int // total transient retries across all stages
}

// Options configures Execute.
type Options struct {
	// Deadline is the overall budget split across stages. Required.
	Deadline time.Duration
	// Retry is applied to stages with Retry=true.
	Retry RetryPolicy
	// Now is the clock; nil means time.Now.
	Now func() time.Time
}

// Execute runs stages in order until one serves a plan. Each non-Free
// stage gets min(its fraction of Deadline, time remaining); once the
// overall budget is spent, remaining solver stages are marked timeout
// without running, but Free stages still run (with the parent context) so
// a stale cache entry can be served even at the deadline edge. If the
// parent context dies the chain aborts with its error. When every stage
// fails, Execute returns the accumulated stage results inside a nil-Plan
// Result alongside errors.Join(ErrExhausted, lastErr).
func Execute(ctx context.Context, stages []Stage, opts Options) (*Result, error) {
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	start := now()
	res := &Result{}
	var lastErr error
	for _, st := range stages {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if st.Skip != nil {
			if reason := st.Skip(); reason != "" {
				res.Stages = append(res.Stages, StageResult{
					Name:    st.Name,
					Outcome: OutcomeSkipped,
					Err:     errors.New(reason),
				})
				stageSpanZero(ctx, st.Name, OutcomeSkipped, reason)
				continue
			}
		}
		remaining := opts.Deadline - now().Sub(start)
		if !st.Free && remaining <= 0 {
			res.Stages = append(res.Stages, StageResult{
				Name:    st.Name,
				Outcome: OutcomeTimeout,
				Err:     context.DeadlineExceeded,
			})
			lastErr = context.DeadlineExceeded
			stageSpanZero(ctx, st.Name, OutcomeTimeout, "deadline budget exhausted before stage ran")
			continue
		}
		budget := remaining
		if st.Fraction > 0 {
			if slice := time.Duration(st.Fraction * float64(opts.Deadline)); slice < budget {
				budget = slice
			}
		}
		stageCtx, cancel := ctx, context.CancelFunc(func() {})
		if !st.Free {
			stageCtx, cancel = context.WithTimeout(ctx, budget)
		}
		// The stage span's ctx flows into st.Run, so solver spans started
		// inside the stage nest under it.
		stageCtx, ssp := obs.StartSpan(stageCtx, "stage."+st.Name)
		ssp.SetAttr("level", st.Level.String())
		if !st.Free {
			ssp.SetAttr("budget_ms", strconv.FormatInt(budget.Milliseconds(), 10))
		}
		stageStart := now()
		var plan *scenario.Plan
		attempts := 1
		var err error
		run := func() error {
			var rerr error
			plan, rerr = st.Run(stageCtx)
			return rerr
		}
		if st.Retry {
			attempts, err = opts.Retry.Retry(stageCtx, run)
			res.Retries += attempts - 1
		} else {
			err = run()
		}
		cancel()
		sr := StageResult{
			Name:     st.Name,
			Attempts: attempts,
			Elapsed:  now().Sub(stageStart),
			Err:      err,
		}
		switch {
		case err == nil && plan != nil:
			sr.Outcome = OutcomeServed
			res.Stages = append(res.Stages, sr)
			res.Plan = plan
			res.Level = st.Level
			res.ServedBy = st.Name
			endStageSpan(ssp, sr)
			return res, nil
		case err == nil:
			// A Free lookup stage may return (nil, nil): nothing to serve.
			sr.Outcome = OutcomeUnavailable
			res.Stages = append(res.Stages, sr)
			lastErr = ErrExhausted
		case errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil:
			sr.Outcome = OutcomeTimeout
			res.Stages = append(res.Stages, sr)
			lastErr = err
		case ctx.Err() != nil:
			// Parent died mid-stage: abort the whole chain.
			sr.Outcome = OutcomeError
			endStageSpan(ssp, sr)
			return nil, ctx.Err()
		default:
			sr.Outcome = OutcomeError
			res.Stages = append(res.Stages, sr)
			lastErr = err
		}
		endStageSpan(ssp, sr)
	}
	return res, errors.Join(ErrExhausted, lastErr)
}

// endStageSpan lands a stage's result on its span. Outcome strings match
// the wire timings so a trace and a degradation block read the same way.
func endStageSpan(sp *obs.Span, sr StageResult) {
	sp.SetAttr("outcome", sr.Outcome)
	if sr.Attempts > 1 {
		sp.SetInt("attempts", int64(sr.Attempts))
	}
	if sr.Err != nil && sr.Outcome != OutcomeServed {
		sp.SetError(sr.Err)
	}
	sp.End()
}

// stageSpanZero records a stage that never ran (skipped, or the budget was
// already spent) as a zero-length span so the trace shows the whole chain
// decision, not just the stages that executed.
func stageSpanZero(ctx context.Context, name, outcome, reason string) {
	_, sp := obs.StartSpan(ctx, "stage."+name)
	sp.SetAttr("outcome", outcome)
	sp.SetAttr("reason", reason)
	sp.End()
}
