// Package wire defines the JSON wire schema shared by the HTTP daemon
// (cmd/nrserved via internal/server) and the CLI (cmd/nrecover -json): the
// serialised forms of a Scenario, a recovery Plan and the server's
// request/response envelopes. Both consumers encode through this one
// package, so the CLI output and the server response can never drift apart.
//
// Every ID slice in the schema is emitted in ascending order and every list
// in a canonical order, so encoding the same scenario or plan twice yields
// byte-identical JSON — the property the plan cache's byte-identical
// cache-hit guarantee and the golden tests rely on.
package wire

import (
	"fmt"
	"math"
	"sort"
	"time"

	"netrecovery/internal/demand"
	"netrecovery/internal/graph"
	"netrecovery/internal/progressive"
	"netrecovery/internal/scenario"
)

// Node is the wire form of a supply-graph node. The field names match the
// topology JSON format of cmd/topogen.
type Node struct {
	Name       string  `json:"name,omitempty"`
	X          float64 `json:"x"`
	Y          float64 `json:"y"`
	RepairCost float64 `json:"repairCost"`
}

// Link is the wire form of a supply-graph edge; From and To are node indices
// in the Nodes array.
type Link struct {
	From       int     `json:"from"`
	To         int     `json:"to"`
	Capacity   float64 `json:"capacity"`
	RepairCost float64 `json:"repairCost"`
}

// Demand is one required flow between two node indices.
type Demand struct {
	Source int     `json:"source"`
	Target int     `json:"target"`
	Flow   float64 `json:"flow"`
}

// Scenario is the wire form of a full MinR instance: topology, demand set
// and disruption state. It is the request body of the server's /v1/plan.
type Scenario struct {
	Name    string   `json:"name,omitempty"`
	Nodes   []Node   `json:"nodes"`
	Links   []Link   `json:"links"`
	Demands []Demand `json:"demands,omitempty"`
	// BrokenNodes and BrokenLinks are element IDs, always emitted sorted
	// ascending.
	BrokenNodes []int `json:"broken_nodes,omitempty"`
	BrokenLinks []int `json:"broken_links,omitempty"`
}

// FromScenario converts an internal scenario into its wire form. ID lists
// are sorted, so the encoding is deterministic.
func FromScenario(name string, s *scenario.Scenario) Scenario {
	ws := Scenario{
		Name:  name,
		Nodes: make([]Node, 0, s.Supply.NumNodes()),
		Links: make([]Link, 0, s.Supply.NumEdges()),
	}
	for _, n := range s.Supply.Nodes() {
		ws.Nodes = append(ws.Nodes, Node{Name: n.Name, X: n.X, Y: n.Y, RepairCost: n.RepairCost})
	}
	for _, e := range s.Supply.Edges() {
		ws.Links = append(ws.Links, Link{From: int(e.From), To: int(e.To), Capacity: e.Capacity, RepairCost: e.RepairCost})
	}
	for _, p := range s.Demand.All() {
		ws.Demands = append(ws.Demands, Demand{Source: int(p.Source), Target: int(p.Target), Flow: p.Flow})
	}
	for _, v := range s.SortedBrokenNodes() {
		ws.BrokenNodes = append(ws.BrokenNodes, int(v))
	}
	for _, e := range s.SortedBrokenEdges() {
		ws.BrokenLinks = append(ws.BrokenLinks, int(e))
	}
	return ws
}

// Build converts the wire scenario back into a validated internal scenario.
func (ws Scenario) Build() (*scenario.Scenario, error) {
	g := graph.New(len(ws.Nodes), len(ws.Links))
	for _, n := range ws.Nodes {
		g.AddNode(n.Name, n.X, n.Y, n.RepairCost)
	}
	for i, l := range ws.Links {
		if _, err := g.AddEdge(graph.NodeID(l.From), graph.NodeID(l.To), l.Capacity, l.RepairCost); err != nil {
			return nil, fmt.Errorf("wire: link %d: %w", i, err)
		}
	}
	dg := demand.New()
	for i, d := range ws.Demands {
		if _, err := dg.Add(graph.NodeID(d.Source), graph.NodeID(d.Target), d.Flow); err != nil {
			return nil, fmt.Errorf("wire: demand %d: %w", i, err)
		}
	}
	s := &scenario.Scenario{
		Supply:      g,
		Demand:      dg,
		BrokenNodes: make(map[graph.NodeID]bool, len(ws.BrokenNodes)),
		BrokenEdges: make(map[graph.EdgeID]bool, len(ws.BrokenLinks)),
	}
	for _, v := range ws.BrokenNodes {
		s.BrokenNodes[graph.NodeID(v)] = true
	}
	for _, e := range ws.BrokenLinks {
		s.BrokenEdges[graph.EdgeID(e)] = true
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Stage is one step of a progressive recovery timeline.
type Stage struct {
	Index          int     `json:"index"`
	RepairedNodes  []int   `json:"repaired_nodes,omitempty"`
	RepairedLinks  []int   `json:"repaired_links,omitempty"`
	Cost           float64 `json:"cost"`
	SatisfiedRatio float64 `json:"satisfied_ratio"`
}

// Plan is the wire form of a recovery plan — the one plan schema emitted by
// both the server's /v1/plan and `nrecover -json`.
type Plan struct {
	Algorithm string `json:"algorithm"`
	// ScenarioFingerprint is the content hash (scenario.FingerprintHex) of
	// the scenario the plan solves.
	ScenarioFingerprint string `json:"scenario_fingerprint"`
	// RepairedNodes and RepairedLinks are element IDs, sorted ascending.
	RepairedNodes []int `json:"repaired_nodes"`
	RepairedLinks []int `json:"repaired_links"`
	NodeRepairs   int   `json:"node_repairs"`
	LinkRepairs   int   `json:"link_repairs"`
	TotalRepairs  int   `json:"total_repairs"`
	// Cost is the total repair cost of the plan on its scenario.
	Cost            float64 `json:"cost"`
	SatisfiedDemand float64 `json:"satisfied_demand"`
	TotalDemand     float64 `json:"total_demand"`
	SatisfiedRatio  float64 `json:"satisfied_ratio"`
	Optimal         bool    `json:"optimal,omitempty"`
	Bound           float64 `json:"bound,omitempty"`
	RuntimeMS       float64 `json:"runtime_ms"`
	Notes           string  `json:"notes,omitempty"`
	// Stages is the progressive recovery timeline, present only when a stage
	// budget was requested.
	Stages []Stage `json:"stages,omitempty"`
}

// FromPlan converts an internal plan (solved on s) into its wire form.
func FromPlan(s *scenario.Scenario, p *scenario.Plan) Plan {
	wp := Plan{
		Algorithm:           p.Solver,
		ScenarioFingerprint: s.FingerprintHex(),
		RepairedNodes:       []int{},
		RepairedLinks:       []int{},
		Cost:                p.RepairCost(s),
		SatisfiedDemand:     p.SatisfiedDemand,
		TotalDemand:         p.TotalDemand,
		SatisfiedRatio:      p.SatisfactionRatio(),
		Optimal:             p.Optimal,
		Bound:               finiteOrZero(p.Bound),
		RuntimeMS:           float64(p.Runtime) / float64(time.Millisecond),
		Notes:               p.Notes,
	}
	for v, repaired := range p.RepairedNodes {
		if repaired {
			wp.RepairedNodes = append(wp.RepairedNodes, int(v))
		}
	}
	for e, repaired := range p.RepairedEdges {
		if repaired {
			wp.RepairedLinks = append(wp.RepairedLinks, int(e))
		}
	}
	sort.Ints(wp.RepairedNodes)
	sort.Ints(wp.RepairedLinks)
	wp.NodeRepairs, wp.LinkRepairs, wp.TotalRepairs = p.NumRepairs()
	return wp
}

// WithStages computes the progressive timeline for the plan under the given
// per-stage budget and attaches it. Stage element IDs keep the scheduler's
// repair order within a stage (the order repairs are performed), which is
// itself deterministic.
func (wp Plan) WithStages(s *scenario.Scenario, p *scenario.Plan, stageBudget float64) (Plan, error) {
	sched, err := progressive.Build(s, p, progressive.Options{StageBudget: stageBudget})
	if err != nil {
		return wp, err
	}
	wp.Stages = make([]Stage, 0, len(sched.Stages))
	for _, stage := range sched.Stages {
		st := Stage{Index: stage.Index, Cost: stage.Cost, SatisfiedRatio: stage.SatisfiedRatio}
		for _, el := range stage.Repairs {
			if el.IsNode() {
				st.RepairedNodes = append(st.RepairedNodes, int(el.Node))
			} else {
				st.RepairedLinks = append(st.RepairedLinks, int(el.Edge))
			}
		}
		wp.Stages = append(wp.Stages, st)
	}
	return wp, nil
}

// finiteOrZero maps the solvers' +-Inf sentinels (e.g. an OPT bound before
// any relaxation solved) to 0, which JSON can carry.
func finiteOrZero(f float64) float64 {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return 0
	}
	return f
}

// PlanRequest is the request body of POST /v1/plan and GET /v1/plan/stream.
type PlanRequest struct {
	Scenario Scenario `json:"scenario"`
	// Algorithm is a solver-registry name (default ISP).
	Algorithm string       `json:"algorithm,omitempty"`
	Options   SolveOptions `json:"options,omitempty"`
}

// SolveOptions carries the per-request solver knobs.
type SolveOptions struct {
	// Fast switches ISP to its greedy split mode.
	Fast bool `json:"fast,omitempty"`
	// OptTimeLimitMS / OptMaxNodes bound OPT's branch-and-bound search.
	OptTimeLimitMS int64 `json:"opt_time_limit_ms,omitempty"`
	OptMaxNodes    int   `json:"opt_max_nodes,omitempty"`
	// Workers is the in-solve parallelism (0 = server default). Plans are
	// identical for every value; it is not part of the cache key.
	Workers int `json:"workers,omitempty"`
	// StageBudget, when positive, additionally computes a progressive
	// recovery timeline with this per-stage repair budget.
	StageBudget float64 `json:"stage_budget,omitempty"`
	// NoCache bypasses the plan cache for this request (always solves, does
	// not store).
	NoCache bool `json:"no_cache,omitempty"`
	// DeadlineMS, when positive, runs the request through the server's
	// deadline-budgeted degradation chain: the requested solver gets a
	// slice of this budget, then a fast-ISP fallback, then a
	// stale-but-served cache entry. The response's degradation block
	// reports which stage answered.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// NoDegrade disables the fallback chain even when the server has a
	// default degradation deadline configured: the request either gets the
	// exact answer it asked for or an error.
	NoDegrade bool `json:"no_degrade,omitempty"`
	// Timing asks the server to attach the request's span breakdown (see
	// Timing) to the response. Answer-invariant: not part of the cache
	// key, and a no-op on servers running with tracing disabled.
	Timing bool `json:"timing,omitempty"`
}

// CacheInfo reports how the server obtained the plan.
type CacheInfo struct {
	// Status is "miss", "hit", "coalesced" or "bypass".
	Status string `json:"status"`
	// Fingerprint is the scenario content hash the cache keyed on.
	Fingerprint string `json:"fingerprint"`
	// AgeMS is the cached plan's age (hits only).
	AgeMS int64 `json:"age_ms"`
}

// StageTiming reports one degradation-chain stage's outcome. The encoding
// is deterministic: field order is fixed and durations are integral
// milliseconds.
type StageTiming struct {
	// Stage names the chain rung: "primary", "fallback_isp", "stale_cache".
	Stage string `json:"stage"`
	// Outcome is "served", "timeout", "error", "skipped" or "unavailable".
	Outcome string `json:"outcome"`
	// Attempts counts solve attempts (>1 when transient faults were
	// retried); 0 for stages that never ran.
	Attempts int `json:"attempts,omitempty"`
	// ElapsedMS is the stage's wall time.
	ElapsedMS int64 `json:"elapsed_ms"`
	// Error is the stage's failure (or skip reason), empty when served.
	Error string `json:"error,omitempty"`
}

// Degradation annotates a response served through the fallback chain.
type Degradation struct {
	// Level is "none" (primary stage answered), "fallback" (a cheaper
	// solver answered) or "stale" (an expired cache entry was served).
	Level string `json:"level"`
	// ServedBy is the stage that produced the plan.
	ServedBy string `json:"served_by"`
	// DeadlineMS is the overall budget the chain ran under.
	DeadlineMS int64 `json:"deadline_ms"`
	// Retries counts transient-fault retries across all stages.
	Retries int `json:"retries,omitempty"`
	// Stages lists every chain rung in execution order.
	Stages []StageTiming `json:"stages"`
}

// TimingSpan is one finished span of the request's trace, surfaced in the
// response when SolveOptions.Timing is set. Attrs is rendered as a JSON
// object (encoding/json sorts the keys, keeping the encoding stable).
type TimingSpan struct {
	// Name is the span's operation name (e.g. "admission.wait",
	// "cache.lookup", "peer.fill", "stage.primary", "solve").
	Name string `json:"name"`
	// StartUS/DurationUS place the span relative to the trace root start,
	// in microseconds.
	StartUS    int64             `json:"start_us"`
	DurationUS int64             `json:"duration_us"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Error      string            `json:"error,omitempty"`
}

// Timing is the opt-in per-request latency breakdown: the finished spans
// of the request's trace at response-build time (the root span is still
// open and therefore absent). TraceID links the response to the server's
// /debug/traces store.
type Timing struct {
	TraceID string       `json:"trace_id"`
	Spans   []TimingSpan `json:"spans"`
}

// PlanResponse is the response body of POST /v1/plan.
type PlanResponse struct {
	Plan  Plan      `json:"plan"`
	Cache CacheInfo `json:"cache"`
	// Degradation is present only when the request ran through the
	// deadline-budgeted fallback chain.
	Degradation *Degradation `json:"degradation,omitempty"`
	// Timing is present only when the request asked for it
	// (options.timing) and the server has tracing enabled.
	Timing *Timing `json:"timing,omitempty"`
}

// Delta kind names, the wire values of Delta.Kind.
const (
	DeltaBreakNode  = "break_node"
	DeltaRepairNode = "repair_node"
	DeltaBreakLink  = "break_link"
	DeltaRepairLink = "repair_link"
	DeltaSetDemand  = "set_demand"
)

// Delta is the wire form of one incremental scenario change. Kind selects
// which target field is read: node for break_node/repair_node, link for
// break_link/repair_link, pair and flow for set_demand. Deltas never change
// the topology (nodes, links, capacities, repair costs); they only move
// elements between the working and broken sets and adjust demand flows.
type Delta struct {
	Kind string  `json:"kind"`
	Node int     `json:"node,omitempty"`
	Link int     `json:"link,omitempty"`
	Pair int     `json:"pair,omitempty"`
	Flow float64 `json:"flow,omitempty"`
}

// Build converts the wire delta into its internal form.
func (d Delta) Build() (scenario.Delta, error) {
	switch d.Kind {
	case DeltaBreakNode:
		return scenario.Delta{Kind: scenario.DeltaBreakNode, Node: graph.NodeID(d.Node)}, nil
	case DeltaRepairNode:
		return scenario.Delta{Kind: scenario.DeltaRepairNode, Node: graph.NodeID(d.Node)}, nil
	case DeltaBreakLink:
		return scenario.Delta{Kind: scenario.DeltaBreakLink, Edge: graph.EdgeID(d.Link)}, nil
	case DeltaRepairLink:
		return scenario.Delta{Kind: scenario.DeltaRepairLink, Edge: graph.EdgeID(d.Link)}, nil
	case DeltaSetDemand:
		return scenario.Delta{Kind: scenario.DeltaSetDemand, Pair: demand.PairID(d.Pair), Flow: d.Flow}, nil
	default:
		return scenario.Delta{}, fmt.Errorf("wire: unknown delta kind %q", d.Kind)
	}
}

// FromDelta converts an internal delta into its wire form.
func FromDelta(d scenario.Delta) Delta {
	w := Delta{Kind: d.Kind.String()}
	switch d.Kind {
	case scenario.DeltaBreakNode, scenario.DeltaRepairNode:
		w.Node = int(d.Node)
	case scenario.DeltaBreakLink, scenario.DeltaRepairLink:
		w.Link = int(d.Edge)
	case scenario.DeltaSetDemand:
		w.Pair = int(d.Pair)
		w.Flow = d.Flow
	}
	return w
}

// SessionRequest is the request body of POST /v1/session: the initial
// scenario of an evolving recovery run plus the solver configuration, which
// is fixed for the session's lifetime.
type SessionRequest struct {
	Scenario  Scenario     `json:"scenario"`
	Algorithm string       `json:"algorithm,omitempty"`
	Options   SolveOptions `json:"options,omitempty"`
}

// SessionInfo describes an open planning session.
type SessionInfo struct {
	ID        string `json:"id"`
	Algorithm string `json:"algorithm"`
	// Fingerprint is the content hash of the session's current scenario.
	Fingerprint string `json:"fingerprint"`
	// Warm reports whether re-plans run the warm incremental path (true for
	// ISP) or solve cold each time.
	Warm bool `json:"warm"`
	// Plans and Deltas count completed re-plans and applied deltas.
	Plans  int `json:"plans"`
	Deltas int `json:"deltas"`
	// IdleTTLMS is the inactivity timeout after which the server evicts the
	// session.
	IdleTTLMS int64 `json:"idle_ttl_ms"`
}

// SessionResponse is the response body of POST /v1/session and
// GET /v1/session/{id}.
type SessionResponse struct {
	Session SessionInfo `json:"session"`
	Plan    Plan        `json:"plan"`
}

// DeltaRequest is the request body of POST /v1/session/{id}/delta: a batch
// of deltas applied atomically before one re-plan.
type DeltaRequest struct {
	Deltas []Delta `json:"deltas"`
}

// DeltaResponse is the response body of POST /v1/session/{id}/delta.
type DeltaResponse struct {
	Session SessionInfo `json:"session"`
	Plan    Plan        `json:"plan"`
	// ReplanMS is the wall-clock time of this re-plan.
	ReplanMS float64 `json:"replan_ms"`
}

// Error is the JSON error envelope of every non-2xx server response.
type Error struct {
	Error string `json:"error"`
}
