package wire

// LoadLatency is a latency distribution summary in milliseconds. P999 is
// the 99.9th percentile — the SLO tail the nrload harness gates on.
type LoadLatency struct {
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
	MaxMS  float64 `json:"max_ms"`
	MeanMS float64 `json:"mean_ms"`
}

// LoadCache aggregates the cache dispositions reported by the servers'
// plan responses (the cache.status field): how the fleet actually answered.
type LoadCache struct {
	// Hits/Misses/Coalesced are the single-node dispositions; PeerFilled
	// counts plans fetched from their owning peer's cache — the multi-node
	// "computed anywhere, hit everywhere" path.
	Hits       int `json:"hits"`
	Misses     int `json:"misses"`
	Coalesced  int `json:"coalesced"`
	PeerFilled int `json:"peer_filled"`
	Bypass     int `json:"bypass"`
	Stale      int `json:"stale"`
	// HitRatio is (Hits+Coalesced+PeerFilled)/plans — requests answered
	// without a local cold solve. PeerFillRatio is PeerFilled/plans.
	HitRatio      float64 `json:"hit_ratio"`
	PeerFillRatio float64 `json:"peer_fill_ratio"`
}

// LoadOps counts completed requests by kind.
type LoadOps struct {
	Plans     int `json:"plans"`
	Sessions  int `json:"sessions"`
	Ensembles int `json:"ensembles"`
}

// LoadReport is the wire form of one nrload run: the SLO-relevant facts of
// replaying Zipf-distributed scenario traffic against one or N nodes. It is
// the artifact the load-smoke CI job uploads and the source of the serve_*
// rows merged into the benchmark trajectory.
type LoadReport struct {
	// Targets are the node base URLs the run addressed.
	Targets []string `json:"targets"`
	// Mode is "closed" (fixed concurrency) or "open" (fixed arrival rate).
	Mode string `json:"mode"`
	// DurationMS is the measured wall time of the run.
	DurationMS float64 `json:"duration_ms"`
	// Requests counts completed requests; Errors those answered with a
	// non-2xx status or a transport failure; Dropped open-loop arrivals
	// shed because the bounded dispatch queue was full.
	Requests int `json:"requests"`
	Errors   int `json:"errors"`
	Dropped  int `json:"dropped"`
	// OK2xx/Err4xx/Err5xx split completed requests by status class.
	OK2xx  int `json:"ok_2xx"`
	Err4xx int `json:"err_4xx"`
	Err5xx int `json:"err_5xx"`
	// ThroughputRPS is completed requests per second of wall time.
	ThroughputRPS float64 `json:"throughput_rps"`
	// Latency summarises completed-request latency (open-loop latencies
	// include bounded queue wait, i.e. coordinated omission is avoided up
	// to the queue bound).
	Latency LoadLatency `json:"latency"`
	Ops     LoadOps     `json:"ops"`
	Cache   LoadCache   `json:"cache"`
	// Timing attributes plan latency to pipeline phases from the servers'
	// span breakdowns; present only when the run requested per-response
	// timing (and the fleet has tracing enabled).
	Timing *LoadTiming `json:"timing,omitempty"`
}

// LoadTiming aggregates the opt-in per-response span breakdowns across
// the run's plan requests: where the tail actually went — queueing for a
// solver slot, solving, or filling from a peer. A phase absent from a
// response (e.g. no peer fill on a cache hit) contributes 0 to that
// phase's distribution, so the percentiles are over ALL sampled plans
// and comparable to the whole-request latency percentiles.
type LoadTiming struct {
	// Samples counts plan responses that carried a timing block.
	Samples int `json:"samples"`
	// QueueP50MS/QueueP99MS summarise admission-queue wait
	// ("admission.wait" spans, summed per request).
	QueueP50MS float64 `json:"queue_p50_ms"`
	QueueP99MS float64 `json:"queue_p99_ms"`
	// SolveP50MS/SolveP99MS summarise solver execution ("solve" spans).
	SolveP50MS float64 `json:"solve_p50_ms"`
	SolveP99MS float64 `json:"solve_p99_ms"`
	// PeerFillP50MS/PeerFillP99MS summarise peer-fill RPCs ("peer.fill").
	PeerFillP50MS float64 `json:"peer_fill_p50_ms"`
	PeerFillP99MS float64 `json:"peer_fill_p99_ms"`
}
