package wire

import (
	"time"

	"netrecovery/internal/ensemble"
	"netrecovery/internal/scenario"
)

// EnsembleSampler is the wire form of a failure-model spec. It IS the
// engine's spec type (plain JSON-tagged fields), aliased so the HTTP schema
// and the engine can never drift.
type EnsembleSampler = ensemble.SamplerSpec

// EnsembleReport is the wire form of an aggregated ensemble result, again
// the engine's own type: every slice is emitted in canonical order and
// wall-clock timing is excluded, so encoding the report of a fixed
// (scenario, sampler, seed) run is byte-identical across runs and worker
// counts.
type EnsembleReport = ensemble.Report

// EnsembleRequest is the request body of POST /v1/ensemble and
// POST /v1/ensemble/stream.
type EnsembleRequest struct {
	Scenario Scenario        `json:"scenario"`
	Sampler  EnsembleSampler `json:"sampler"`
	// Samples is the ensemble size (0 = the engine default, 1000).
	Samples int `json:"samples,omitempty"`
	// Seed roots the per-sample random streams.
	Seed int64 `json:"seed,omitempty"`
	// Algorithm is a solver-registry name (default ISP).
	Algorithm string `json:"algorithm,omitempty"`
	// Options carries the solver knobs; Workers bounds the solve pool.
	// StageBudget and NoCache are not meaningful for ensembles and are
	// ignored.
	Options SolveOptions `json:"options,omitempty"`
	// Alpha is the CVaR confidence level (0 = 0.95).
	Alpha float64 `json:"alpha,omitempty"`
	// ConsensusThreshold is the repair-frequency cut-off of the consensus
	// plan (0 = 0.9).
	ConsensusThreshold float64 `json:"consensus_threshold,omitempty"`
}

// BuildSpec converts the wire request into an engine spec (without Cache,
// Workers clamping or progress wiring, which the server layers on).
func (req EnsembleRequest) BuildSpec() (ensemble.Spec, error) {
	s, err := req.Scenario.Build()
	if err != nil {
		return ensemble.Spec{}, err
	}
	spec := ensemble.Spec{
		Scenario:           s,
		Sampler:            req.Sampler,
		Samples:            req.Samples,
		Seed:               req.Seed,
		Algorithm:          req.Algorithm,
		Fast:               req.Options.Fast,
		OPTTimeLimit:       time.Duration(req.Options.OptTimeLimitMS) * time.Millisecond,
		OPTMaxNodes:        req.Options.OptMaxNodes,
		Workers:            req.Options.Workers,
		Alpha:              req.Alpha,
		ConsensusThreshold: req.ConsensusThreshold,
	}
	return spec, nil
}

// EnsembleResponse is the response body of POST /v1/ensemble. Timing lives
// here, outside the deterministic report.
type EnsembleResponse struct {
	Report *EnsembleReport `json:"report"`
	// Fingerprint is the content hash of the base scenario.
	Fingerprint string  `json:"fingerprint"`
	ElapsedMS   float64 `json:"elapsed_ms"`
}

// FromEnsemble assembles the response envelope from a run's inputs and
// report.
func FromEnsemble(s *scenario.Scenario, rep *EnsembleReport) EnsembleResponse {
	return EnsembleResponse{
		Report:      rep,
		Fingerprint: s.FingerprintHex(),
		ElapsedMS:   float64(rep.Elapsed) / float64(time.Millisecond),
	}
}
