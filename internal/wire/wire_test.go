package wire

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"netrecovery/internal/demand"
	"netrecovery/internal/graph"
	"netrecovery/internal/heuristics"
	"netrecovery/internal/scenario"
)

func testScenario(t *testing.T) *scenario.Scenario {
	t.Helper()
	g := graph.New(4, 4)
	g.AddNode("a", 0, 0, 1)
	g.AddNode("b", 1, 0, 2)
	g.AddNode("c", 1, 1, 3)
	g.AddNode("d", 0, 1, 4)
	g.MustAddEdge(0, 1, 10, 1)
	g.MustAddEdge(1, 2, 10, 2)
	g.MustAddEdge(2, 3, 10, 3)
	g.MustAddEdge(3, 0, 10, 4)
	dg := demand.New()
	dg.MustAdd(0, 2, 5)
	s := &scenario.Scenario{
		Supply:      g,
		Demand:      dg,
		BrokenNodes: map[graph.NodeID]bool{3: true, 1: true},
		BrokenEdges: map[graph.EdgeID]bool{2: true, 0: true},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestScenarioRoundTrip(t *testing.T) {
	s := testScenario(t)
	ws := FromScenario("square", s)
	raw, err := json.Marshal(ws)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Scenario
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	back, err := decoded.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := back.Fingerprint(), s.Fingerprint(); got != want {
		t.Fatalf("wire round trip changed the scenario fingerprint:\n got  %x\n want %x", got, want)
	}
}

// TestScenarioEncodingDeterministic: the same scenario marshals to
// byte-identical JSON every time (sorted ID lists, canonical field order).
func TestScenarioEncodingDeterministic(t *testing.T) {
	s := testScenario(t)
	first, err := json.Marshal(FromScenario("square", s))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		again, err := json.Marshal(FromScenario("square", s.Clone()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("run %d: scenario encoding not deterministic:\n%s\nvs\n%s", i, first, again)
		}
	}
	var ws Scenario
	if err := json.Unmarshal(first, &ws); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ws.BrokenNodes); i++ {
		if ws.BrokenNodes[i-1] >= ws.BrokenNodes[i] {
			t.Fatalf("broken_nodes not sorted: %v", ws.BrokenNodes)
		}
	}
	for i := 1; i < len(ws.BrokenLinks); i++ {
		if ws.BrokenLinks[i-1] >= ws.BrokenLinks[i] {
			t.Fatalf("broken_links not sorted: %v", ws.BrokenLinks)
		}
	}
}

func TestScenarioBuildRejectsInvalid(t *testing.T) {
	cases := map[string]Scenario{
		"broken node out of range": {
			Nodes:       []Node{{}, {}},
			Links:       []Link{{From: 0, To: 1, Capacity: 1}},
			BrokenNodes: []int{5},
		},
		"link endpoint out of range": {
			Nodes: []Node{{}, {}},
			Links: []Link{{From: 0, To: 9, Capacity: 1}},
		},
		"demand endpoint out of range": {
			Nodes:   []Node{{}, {}},
			Links:   []Link{{From: 0, To: 1, Capacity: 1}},
			Demands: []Demand{{Source: 0, Target: 7, Flow: 1}},
		},
		"non-positive demand flow": {
			Nodes:   []Node{{}, {}},
			Links:   []Link{{From: 0, To: 1, Capacity: 1}},
			Demands: []Demand{{Source: 0, Target: 1, Flow: 0}},
		},
	}
	for name, ws := range cases {
		if _, err := ws.Build(); err == nil {
			t.Errorf("%s: Build accepted an invalid scenario", name)
		}
	}
}

// TestPlanEncoding solves a scenario and checks the plan's wire form: sorted
// ID lists, consistent counts, deterministic bytes for the same plan.
func TestPlanEncoding(t *testing.T) {
	s := testScenario(t)
	solver, err := heuristics.New("ISP", heuristics.Params{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := solver.Solve(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	wp := FromPlan(s, plan)
	if wp.Algorithm != "ISP" {
		t.Errorf("Algorithm = %q", wp.Algorithm)
	}
	if wp.ScenarioFingerprint != s.FingerprintHex() {
		t.Errorf("fingerprint mismatch: %s vs %s", wp.ScenarioFingerprint, s.FingerprintHex())
	}
	if wp.NodeRepairs != len(wp.RepairedNodes) || wp.LinkRepairs != len(wp.RepairedLinks) {
		t.Errorf("repair counts inconsistent with ID lists: %+v", wp)
	}
	if wp.TotalRepairs != wp.NodeRepairs+wp.LinkRepairs {
		t.Errorf("TotalRepairs = %d, want %d", wp.TotalRepairs, wp.NodeRepairs+wp.LinkRepairs)
	}
	for i := 1; i < len(wp.RepairedNodes); i++ {
		if wp.RepairedNodes[i-1] >= wp.RepairedNodes[i] {
			t.Fatalf("repaired_nodes not sorted: %v", wp.RepairedNodes)
		}
	}
	for i := 1; i < len(wp.RepairedLinks); i++ {
		if wp.RepairedLinks[i-1] >= wp.RepairedLinks[i] {
			t.Fatalf("repaired_links not sorted: %v", wp.RepairedLinks)
		}
	}
	first, err := json.Marshal(wp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, err := json.Marshal(FromPlan(s, plan))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("plan encoding not deterministic:\n%s\nvs\n%s", first, again)
		}
	}
}

func TestPlanWithStages(t *testing.T) {
	s := testScenario(t)
	solver, err := heuristics.New("ALL", heuristics.Params{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := solver.Solve(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	wp, err := FromPlan(s, plan).WithStages(s, plan, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(wp.Stages) == 0 {
		t.Fatal("no stages computed")
	}
	total := 0
	for _, st := range wp.Stages {
		total += len(st.RepairedNodes) + len(st.RepairedLinks)
	}
	if total != wp.TotalRepairs {
		t.Fatalf("stages cover %d repairs, plan has %d", total, wp.TotalRepairs)
	}
	if _, err := FromPlan(s, plan).WithStages(s, plan, 0.001); err == nil {
		t.Fatal("WithStages accepted a budget smaller than the largest repair")
	}
}
