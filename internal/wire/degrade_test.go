package wire

import (
	"bytes"
	"encoding/json"
	"testing"
)

func testDegradation() *Degradation {
	return &Degradation{
		Level:      "fallback",
		ServedBy:   "fallback_isp",
		DeadlineMS: 250,
		Retries:    1,
		Stages: []StageTiming{
			{Stage: "primary", Outcome: "timeout", Attempts: 1, ElapsedMS: 150, Error: "context deadline exceeded"},
			{Stage: "fallback_isp", Outcome: "served", Attempts: 2, ElapsedMS: 12},
		},
	}
}

// TestDegradationGolden pins the exact wire bytes of the degradation block:
// clients (and the chaos CI job) parse these field names and outcome
// strings, so a drift here is a breaking API change.
func TestDegradationGolden(t *testing.T) {
	raw, err := json.Marshal(testDegradation())
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"level":"fallback","served_by":"fallback_isp","deadline_ms":250,"retries":1,` +
		`"stages":[{"stage":"primary","outcome":"timeout","attempts":1,"elapsed_ms":150,"error":"context deadline exceeded"},` +
		`{"stage":"fallback_isp","outcome":"served","attempts":2,"elapsed_ms":12}]}`
	if string(raw) != want {
		t.Fatalf("degradation encoding drifted:\n got %s\nwant %s", raw, want)
	}
}

// TestDegradationDeterministic: repeated marshals are byte-identical, and a
// degraded PlanResponse embeds the block under the pinned key.
func TestDegradationDeterministic(t *testing.T) {
	first, err := json.Marshal(testDegradation())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		again, err := json.Marshal(testDegradation())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("marshal %d differs:\n%s\n%s", i, first, again)
		}
	}

	resp := PlanResponse{Degradation: testDegradation()}
	raw, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"degradation":{"level":"fallback"`)) {
		t.Fatalf("PlanResponse missing degradation block: %s", raw)
	}

	// Absent when the chain did not run.
	raw, err = json.Marshal(PlanResponse{})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte("degradation")) {
		t.Fatalf("undegraded PlanResponse must omit the block: %s", raw)
	}
}

// TestSolveOptionsDeadlineRoundTrip covers the new request knobs.
func TestSolveOptionsDeadlineRoundTrip(t *testing.T) {
	in := SolveOptions{DeadlineMS: 500, NoDegrade: true}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != `{"deadline_ms":500,"no_degrade":true}` {
		t.Fatalf("options encoding = %s", raw)
	}
	var out SolveOptions
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
	// Zero options stay empty on the wire.
	raw, _ = json.Marshal(SolveOptions{})
	if string(raw) != `{}` {
		t.Fatalf("zero options = %s", raw)
	}
}
