package wire

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"time"

	"netrecovery/internal/graph"
	"netrecovery/internal/scenario"
)

// CachedPlan is the wire form of a raw cached *scenario.Plan, the payload
// of the cluster peer-fill endpoint. Unlike Plan (which is rendered against
// a scenario — cost, satisfied ratio, fingerprint), CachedPlan carries
// exactly the solver-produced plan state, faithfully enough that the
// receiving node's cache entry is indistinguishable from having solved
// locally: FromPlan over a rebuilt CachedPlan is byte-identical to FromPlan
// over the original. Floats that may hold the solvers' ±Inf sentinels
// (Bound) travel as IEEE-754 bit patterns, which JSON numbers cannot carry;
// the solver's routing table is deliberately not transferred (no serving
// path reads it — plan rendering and progressive schedules derive
// everything from the repair decisions).
type CachedPlan struct {
	Solver string `json:"solver"`
	// RepairedNodes and RepairedLinks are element IDs, sorted ascending.
	RepairedNodes []int `json:"repaired_nodes"`
	RepairedLinks []int `json:"repaired_links"`
	// SatisfiedDemand and TotalDemand travel as bit patterns (see
	// BoundBits); they are exact solver outputs the plan's satisfied ratio
	// is derived from.
	SatisfiedDemandBits string `json:"satisfied_demand_bits"`
	TotalDemandBits     string `json:"total_demand_bits"`
	Optimal             bool   `json:"optimal,omitempty"`
	// BoundBits is the hex-encoded big-endian IEEE-754 bit pattern of the
	// OPT lower bound (±Inf before any relaxation solved).
	BoundBits string `json:"bound_bits"`
	// RuntimeNS is the original solve's wall time in nanoseconds.
	RuntimeNS int64  `json:"runtime_ns"`
	Notes     string `json:"notes,omitempty"`
}

// floatBits encodes a float64 as its hex bit pattern.
func floatBits(f float64) string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(f))
	return hex.EncodeToString(b[:])
}

// bitsFloat decodes floatBits.
func bitsFloat(s string) (float64, error) {
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != 8 {
		return 0, fmt.Errorf("wire: invalid float bits %q", s)
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b)), nil
}

// FromCachedPlan converts an internal plan into its transferable form.
func FromCachedPlan(p *scenario.Plan) CachedPlan {
	cp := CachedPlan{
		Solver:              p.Solver,
		RepairedNodes:       make([]int, 0, len(p.RepairedNodes)),
		RepairedLinks:       make([]int, 0, len(p.RepairedEdges)),
		SatisfiedDemandBits: floatBits(p.SatisfiedDemand),
		TotalDemandBits:     floatBits(p.TotalDemand),
		Optimal:             p.Optimal,
		BoundBits:           floatBits(p.Bound),
		RuntimeNS:           int64(p.Runtime),
		Notes:               p.Notes,
	}
	for v, repaired := range p.RepairedNodes {
		if repaired {
			cp.RepairedNodes = append(cp.RepairedNodes, int(v))
		}
	}
	for e, repaired := range p.RepairedEdges {
		if repaired {
			cp.RepairedLinks = append(cp.RepairedLinks, int(e))
		}
	}
	sort.Ints(cp.RepairedNodes)
	sort.Ints(cp.RepairedLinks)
	return cp
}

// Build reconstructs the internal plan.
func (cp CachedPlan) Build() (*scenario.Plan, error) {
	satisfied, err := bitsFloat(cp.SatisfiedDemandBits)
	if err != nil {
		return nil, err
	}
	total, err := bitsFloat(cp.TotalDemandBits)
	if err != nil {
		return nil, err
	}
	bound, err := bitsFloat(cp.BoundBits)
	if err != nil {
		return nil, err
	}
	p := &scenario.Plan{
		Solver:          cp.Solver,
		RepairedNodes:   make(map[graph.NodeID]bool, len(cp.RepairedNodes)),
		RepairedEdges:   make(map[graph.EdgeID]bool, len(cp.RepairedLinks)),
		SatisfiedDemand: satisfied,
		TotalDemand:     total,
		Optimal:         cp.Optimal,
		Bound:           bound,
		Runtime:         time.Duration(cp.RuntimeNS),
		Notes:           cp.Notes,
	}
	for _, v := range cp.RepairedNodes {
		p.RepairedNodes[graph.NodeID(v)] = true
	}
	for _, e := range cp.RepairedLinks {
		p.RepairedEdges[graph.EdgeID(e)] = true
	}
	return p, nil
}

// PeerPlanResponse is the response body of GET /v1/peer/plan/{fp} — the
// cluster peer-fill endpoint. A lookup that finds nothing is a successful
// 200 with Found=false (the caller's fallback is a local solve, not an
// error path).
type PeerPlanResponse struct {
	Found bool `json:"found"`
	// Plan is present when Found.
	Plan *CachedPlan `json:"plan,omitempty"`
	// AgeMS is the entry's time in the owner's cache.
	AgeMS int64 `json:"age_ms,omitempty"`
}
