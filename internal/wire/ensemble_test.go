package wire

import (
	"encoding/json"
	"testing"
	"time"

	"netrecovery/internal/ensemble"
)

func TestEnsembleRequestBuildSpec(t *testing.T) {
	req := EnsembleRequest{
		Scenario: Scenario{
			Nodes:   []Node{{Name: "a"}, {Name: "b"}},
			Links:   []Link{{From: 0, To: 1, Capacity: 3}},
			Demands: []Demand{{Source: 0, Target: 1, Flow: 2}},
		},
		Sampler:            EnsembleSampler{Model: ensemble.ModelCascade, SeedProb: 0.1, Spread: 0.4},
		Samples:            64,
		Seed:               5,
		Algorithm:          "SRT",
		Options:            SolveOptions{Fast: true, OptTimeLimitMS: 1500, OptMaxNodes: 9, Workers: 3},
		Alpha:              0.99,
		ConsensusThreshold: 0.8,
	}
	spec, err := req.BuildSpec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Scenario == nil || spec.Scenario.Supply.NumNodes() != 2 {
		t.Fatalf("scenario not built: %+v", spec.Scenario)
	}
	if spec.Sampler != req.Sampler {
		t.Errorf("sampler: got %+v", spec.Sampler)
	}
	if spec.Samples != 64 || spec.Seed != 5 || spec.Algorithm != "SRT" {
		t.Errorf("spec = %+v", spec)
	}
	if !spec.Fast || spec.OPTTimeLimit != 1500*time.Millisecond || spec.OPTMaxNodes != 9 || spec.Workers != 3 {
		t.Errorf("options not mapped: %+v", spec)
	}
	if spec.Alpha != 0.99 || spec.ConsensusThreshold != 0.8 {
		t.Errorf("alpha/threshold: %g/%g", spec.Alpha, spec.ConsensusThreshold)
	}
	if err := spec.Validate(); err != nil {
		t.Errorf("built spec must validate: %v", err)
	}

	// A broken scenario fails at build time.
	req.Scenario.Links[0].From = 9
	if _, err := req.BuildSpec(); err == nil {
		t.Error("out-of-range link endpoint must fail BuildSpec")
	}
}

// TestEnsembleReportEncodingDeterministic: the report type re-encodes to the
// same bytes after a JSON round trip, and wall-clock timing stays out of the
// encoding (it lives in the response envelope).
func TestEnsembleReportEncodingDeterministic(t *testing.T) {
	rep := &EnsembleReport{
		Algorithm: "ISP",
		Samples:   10,
		Unique:    3,
		Deduped:   7,
		Solves:    3,
		HitRatio:  0.7,
		Alpha:     0.95,
		Repairs: []ensemble.RepairStat{
			{Kind: "node", ID: 1, Broken: 5, Repaired: 5, Frequency: 0.5, ConditionalFrequency: 1},
			{Kind: "link", ID: 0, Broken: 10, Repaired: 9, Frequency: 0.9, ConditionalFrequency: 0.9},
		},
		Consensus: ensemble.Consensus{Threshold: 0.9, Nodes: []int{}, Links: []int{0}},
		Elapsed:   17 * time.Second,
	}
	first, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded EnsembleReport
	if err := json.Unmarshal(first, &decoded); err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(&decoded)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatalf("round trip changed the bytes:\n%s\n%s", first, second)
	}
	if decoded.Elapsed != 0 {
		t.Errorf("Elapsed must not be serialised, got %v", decoded.Elapsed)
	}
	if string(first) == "" || string(first)[0] != '{' {
		t.Fatal("unexpected encoding")
	}
}
