package wire

import (
	"encoding/json"
	"math"
	"testing"
	"time"

	"netrecovery/internal/graph"
	"netrecovery/internal/scenario"
)

// peerTestScenario is a 3-node path with the middle node and both links
// broken.
func peerTestScenario(t *testing.T) *scenario.Scenario {
	t.Helper()
	ws := Scenario{
		Nodes: []Node{
			{Name: "a", RepairCost: 1},
			{Name: "b", X: 1, RepairCost: 2},
			{Name: "c", X: 2, RepairCost: 3},
		},
		Links: []Link{
			{From: 0, To: 1, Capacity: 10, RepairCost: 4},
			{From: 1, To: 2, Capacity: 10, RepairCost: 5},
		},
		Demands:     []Demand{{Source: 0, Target: 2, Flow: 5}},
		BrokenNodes: []int{1},
		BrokenLinks: []int{0, 1},
	}
	s, err := ws.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return s
}

// TestCachedPlanRoundTrip pins the peer-fill fidelity guarantee: a plan
// that travelled through CachedPlan JSON renders (FromPlan) byte-identically
// to the original — the receiving node's cache entry is indistinguishable
// from a local solve.
func TestCachedPlanRoundTrip(t *testing.T) {
	s := peerTestScenario(t)
	p := &scenario.Plan{
		Solver:          "OPT",
		RepairedNodes:   map[graph.NodeID]bool{1: true},
		RepairedEdges:   map[graph.EdgeID]bool{0: true, 1: true},
		SatisfiedDemand: 5.0000000000000004, // a value JSON text could mangle
		TotalDemand:     5,
		Optimal:         true,
		Bound:           11.000000000000002,
		Runtime:         1234567 * time.Nanosecond,
		Notes:           "closed gap",
	}

	raw, err := json.Marshal(FromCachedPlan(p))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var cp CachedPlan
	if err := json.Unmarshal(raw, &cp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	back, err := cp.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}

	want, err := json.Marshal(FromPlan(s, p))
	if err != nil {
		t.Fatalf("marshal original: %v", err)
	}
	got, err := json.Marshal(FromPlan(s, back))
	if err != nil {
		t.Fatalf("marshal rebuilt: %v", err)
	}
	if string(want) != string(got) {
		t.Fatalf("rebuilt plan renders differently:\n want %s\n  got %s", want, got)
	}
	if back.Runtime != p.Runtime {
		t.Errorf("Runtime = %v, want %v", back.Runtime, p.Runtime)
	}
}

// TestCachedPlanInfBound pins that the solvers' ±Inf bound sentinel — which
// a JSON number cannot carry — survives the bit-pattern encoding.
func TestCachedPlanInfBound(t *testing.T) {
	p := scenario.NewPlan("ISP")
	p.Bound = math.Inf(1)
	raw, err := json.Marshal(FromCachedPlan(p))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var cp CachedPlan
	if err := json.Unmarshal(raw, &cp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	back, err := cp.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if !math.IsInf(back.Bound, 1) {
		t.Fatalf("Bound = %v, want +Inf", back.Bound)
	}
}

// TestCachedPlanBadBits rejects malformed bit patterns instead of silently
// zeroing them.
func TestCachedPlanBadBits(t *testing.T) {
	cp := CachedPlan{SatisfiedDemandBits: "zz", TotalDemandBits: floatBits(0), BoundBits: floatBits(0)}
	if _, err := cp.Build(); err == nil {
		t.Fatal("Build accepted malformed float bits")
	}
}
