package experiments

import (
	"time"

	"netrecovery/internal/core"
	"netrecovery/internal/heuristics"
)

// Config controls how a figure runner executes: how many random seeds are
// averaged, which solvers participate and how aggressively the expensive
// solvers are bounded. The zero value is usable; Paper() returns the
// settings closest to the paper, and Quick() a scaled-down variant suited to
// unit tests and continuous benchmarking.
type Config struct {
	// Runs is the number of random seeds averaged per point (the paper uses
	// 20). Seed is the base seed; run r uses Seed + r.
	Runs int
	Seed int64

	// IncludeOpt / IncludeGreedy toggle the expensive baselines. The paper
	// itself omits the greedy heuristics on large topologies (§VII-C) and
	// OPT wherever it would not terminate.
	IncludeOpt    bool
	IncludeGreedy bool

	// OptMaxNodes / OptTimeLimit bound each OPT invocation.
	OptMaxNodes  int
	OptTimeLimit time.Duration

	// OptWorkers is the branch-and-bound parallelism of each OPT
	// invocation (0 = 1). The default stays sequential because the figure
	// runners already parallelise across cells via Workers; raise it when
	// running a single expensive figure (e.g. Fig. 7, which executes
	// serially) on a multi-core machine. Figure results are identical for
	// every value.
	OptWorkers int

	// FastISP switches ISP to the greedy split mode (recommended above a few
	// hundred nodes).
	FastISP bool

	// Workers bounds the goroutine pool that executes the (x value, seed)
	// cells of each figure (0 = GOMAXPROCS). Results are aggregated in a
	// fixed order, so the figures are deterministic for any worker count —
	// except where OPT's wall-clock search limit binds, since the incumbent
	// found within the limit can vary with CPU contention. Fig. 7 (execution
	// times) always runs serially.
	Workers int

	// Figure-specific sweeps; nil means the paper's values.
	DemandPairs   []int     // Fig. 4 and Fig. 9 x axis
	DemandFlows   []float64 // Fig. 3 and Fig. 5 x axis
	Variances     []float64 // Fig. 6 x axis
	EdgeProbs     []float64 // Fig. 7 x axis
	FlowPerPair   float64   // Fig. 4 (default 10) and Fig. 9 (default 22)
	FixedPairs    int       // Fig. 3, 5, 6 number of pairs (default 4)
	ErdosNodes    int       // Fig. 7 topology size (default 100)
	ErdosDemands  int       // Fig. 7 number of unit demands (default 5)
	ErdosCapacity float64   // Fig. 7 link capacity (default 1000)
}

// Paper returns the configuration matching the paper's experimental setup.
// Note that with 20 runs and OPT enabled the full reproduction takes hours,
// exactly as the paper reports for its own OPT runs.
func Paper() Config {
	return Config{
		Runs:          20,
		Seed:          1,
		IncludeOpt:    true,
		IncludeGreedy: true,
		OptMaxNodes:   20000,
		OptTimeLimit:  30 * time.Minute,
		DemandPairs:   []int{1, 2, 3, 4, 5, 6, 7},
		DemandFlows:   []float64{2, 4, 6, 8, 10, 12, 14, 16, 18},
		Variances:     []float64{10, 25, 50, 75, 100, 125, 150},
		EdgeProbs:     []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
		FlowPerPair:   10,
		FixedPairs:    4,
		ErdosNodes:    100,
		ErdosDemands:  5,
		ErdosCapacity: 1000,
	}
}

// Quick returns a configuration that exercises every figure end to end in
// seconds: fewer seeds, smaller sweeps, tight OPT limits. The series keep
// the paper's qualitative shape but individual numbers are noisier.
func Quick() Config {
	return Config{
		Runs:          2,
		Seed:          1,
		IncludeOpt:    true,
		IncludeGreedy: true,
		OptMaxNodes:   60,
		OptTimeLimit:  5 * time.Second,
		FastISP:       true,
		DemandPairs:   []int{1, 3, 5},
		DemandFlows:   []float64{4, 10, 16},
		Variances:     []float64{10, 50, 150},
		EdgeProbs:     []float64{0.1, 0.3},
		FlowPerPair:   10,
		FixedPairs:    3,
		ErdosNodes:    30,
		ErdosDemands:  3,
		ErdosCapacity: 1000,
	}
}

func (c Config) withDefaults() Config {
	if c.Runs <= 0 {
		c.Runs = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.OptMaxNodes == 0 {
		c.OptMaxNodes = 400
	}
	if c.OptTimeLimit == 0 {
		c.OptTimeLimit = 60 * time.Second
	}
	if c.DemandPairs == nil {
		c.DemandPairs = []int{1, 2, 3, 4, 5, 6, 7}
	}
	if c.DemandFlows == nil {
		c.DemandFlows = []float64{2, 4, 6, 8, 10, 12, 14, 16, 18}
	}
	if c.Variances == nil {
		c.Variances = []float64{10, 25, 50, 75, 100, 125, 150}
	}
	if c.EdgeProbs == nil {
		c.EdgeProbs = []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	}
	if c.FlowPerPair == 0 {
		c.FlowPerPair = 10
	}
	if c.FixedPairs == 0 {
		c.FixedPairs = 4
	}
	if c.ErdosNodes == 0 {
		c.ErdosNodes = 100
	}
	if c.ErdosDemands == 0 {
		c.ErdosDemands = 5
	}
	if c.ErdosCapacity == 0 {
		c.ErdosCapacity = 1000
	}
	return c
}

// ispSolver builds the ISP solver for this configuration.
func (c Config) ispSolver() heuristics.Solver {
	opts := core.Options{}
	if c.FastISP {
		opts = core.FastOptions()
	}
	return &heuristics.ISPSolver{Options: opts}
}

// optSolver builds the OPT solver for this configuration.
func (c Config) optSolver() heuristics.Solver {
	workers := c.OptWorkers
	if workers == 0 {
		workers = 1 // cells are already parallel; see the OptWorkers doc
	}
	return &heuristics.Opt{MaxNodes: c.OptMaxNodes, TimeLimit: c.OptTimeLimit, Workers: workers}
}
