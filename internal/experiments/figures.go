package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"netrecovery/internal/core"
	"netrecovery/internal/demand"
	"netrecovery/internal/disruption"
	"netrecovery/internal/flow"
	"netrecovery/internal/heuristics"
	"netrecovery/internal/scenario"
	"netrecovery/internal/sweep"
	"netrecovery/internal/topology"
)

// Solver labels reused by several figures.
const (
	seriesISP  = core.SolverName
	seriesOPT  = heuristics.OptName
	seriesSRT  = heuristics.SRTName
	seriesGCOM = heuristics.GreedyCommitName
	seriesGNC  = heuristics.GreedyNoCommitName
	seriesALL  = heuristics.AllName
	seriesMCB  = "MCB"
	seriesMCW  = "MCW"
)

// FigureResult bundles every table produced by one figure runner.
type FigureResult struct {
	Figure string
	Tables []*Table
}

// measurement is the per-run outcome of one solver on one scenario.
type measurement struct {
	nodeRepairs float64
	edgeRepairs float64
	satisfied   float64 // percentage of satisfied demand
	runtime     time.Duration
}

// runSolver executes a solver on (a clone of) the scenario and extracts the
// figures' metrics.
func runSolver(ctx context.Context, s *scenario.Scenario, solver heuristics.Solver) (measurement, error) {
	plan, err := solver.Solve(ctx, s)
	if err != nil {
		return measurement{}, fmt.Errorf("%s: %w", solver.Name(), err)
	}
	nodes, edges, _ := plan.NumRepairs()
	return measurement{
		nodeRepairs: float64(nodes),
		edgeRepairs: float64(edges),
		satisfied:   100 * plan.SatisfactionRatio(),
		runtime:     plan.Runtime,
	}, nil
}

// bellCanadaScenario builds one Bell-Canada scenario: far-apart demand pairs
// and either complete destruction or a geographic disruption of the given
// variance (variance <= 0 means complete destruction).
func bellCanadaScenario(pairs int, flowPerPair, variance float64, seed int64) (*scenario.Scenario, error) {
	g := topology.BellCanada()
	rng := rand.New(rand.NewSource(seed))
	dg, err := demand.GenerateFarApartPairs(g, pairs, flowPerPair, rng)
	if err != nil {
		return nil, err
	}
	var d disruption.Disruption
	if variance <= 0 {
		d = disruption.Complete(g)
	} else {
		d = disruption.Geographic(g, disruption.GeographicConfig{Auto: true, Variance: variance, PeakProbability: 1}, rng)
	}
	return &scenario.Scenario{Supply: g, Demand: dg, BrokenNodes: d.Nodes, BrokenEdges: d.Edges}, nil
}

// solverSet assembles the solvers participating in the Bell-Canada figures.
// Each call returns fresh solver values, so concurrently-executing cells
// never share solver state.
func (c Config) solverSet(withGreedy bool) []heuristics.Solver {
	solvers := []heuristics.Solver{c.ispSolver()}
	if c.IncludeOpt {
		solvers = append(solvers, c.optSolver())
	}
	solvers = append(solvers, &heuristics.SRT{})
	if withGreedy && c.IncludeGreedy {
		solvers = append(solvers, &heuristics.GreedyCommit{}, &heuristics.GreedyNoCommit{})
	}
	solvers = append(solvers, &heuristics.All{})
	return solvers
}

// seriesNames extracts the display names of a solver set.
func seriesNames(solvers []heuristics.Solver) []string {
	names := make([]string, 0, len(solvers))
	for _, s := range solvers {
		names = append(names, s.Name())
	}
	return names
}

// fig3Cell is the per-(flow, run) outcome of the Fig. 3 runner.
type fig3Cell struct {
	feasible    bool
	best, worst float64
	allRepairs  float64
	optRepairs  float64
}

// Fig3MulticommodityEnvelope reproduces Fig. 3: the number of total repairs
// of the best (MCB) and worst (MCW) optimal solutions of the multi-commodity
// relaxation, versus OPT and ALL, as the demand flow per pair increases on
// the Bell-Canada topology with complete destruction. The (flow, seed) cells
// run concurrently on the sweep worker pool.
func Fig3MulticommodityEnvelope(ctx context.Context, cfg Config) (*FigureResult, error) {
	cfg = cfg.withDefaults()
	series := []string{seriesMCB, seriesMCW, seriesALL}
	if cfg.IncludeOpt {
		series = append([]string{seriesOPT}, series...)
	}
	table := NewTable("Fig. 3: total repairs of the multi-commodity envelope", "demand flow per pair", series)

	cells := make([]fig3Cell, len(cfg.DemandFlows)*cfg.Runs)
	err := sweep.ForEach(ctx, cfg.Workers, len(cells), func(ctx context.Context, i int) error {
		flowPerPair := cfg.DemandFlows[i/cfg.Runs]
		run := i % cfg.Runs
		s, err := bellCanadaScenario(cfg.FixedPairs, flowPerPair, 0, cfg.Seed+int64(run))
		if err != nil {
			return err
		}
		mc, err := flow.MulticommodityRelaxation(s)
		if err != nil {
			return err
		}
		if !mc.Feasible {
			return nil
		}
		cell := fig3Cell{feasible: true}
		_, _, best := mc.Best.NumRepairs()
		_, _, worst := mc.Worst.NumRepairs()
		cell.best = float64(best)
		cell.worst = float64(worst)
		nodes, edges := s.NumBroken()
		cell.allRepairs = float64(nodes + edges)
		if cfg.IncludeOpt {
			m, err := runSolver(ctx, s, cfg.optSolver())
			if err != nil {
				return err
			}
			cell.optRepairs = m.nodeRepairs + m.edgeRepairs
		}
		cells[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}

	for fi, flowPerPair := range cfg.DemandFlows {
		sums := make(map[string]float64, len(series))
		counted := 0
		for run := 0; run < cfg.Runs; run++ {
			cell := cells[fi*cfg.Runs+run]
			if !cell.feasible {
				continue
			}
			sums[seriesMCB] += cell.best
			sums[seriesMCW] += cell.worst
			sums[seriesALL] += cell.allRepairs
			if cfg.IncludeOpt {
				sums[seriesOPT] += cell.optRepairs
			}
			counted++
		}
		if counted == 0 {
			continue
		}
		row := make(map[string]float64, len(sums))
		for k, v := range sums {
			row[k] = v / float64(counted)
		}
		table.AddRow(flowPerPair, row)
	}
	return &FigureResult{Figure: "3", Tables: []*Table{table}}, nil
}

// Fig4VaryDemandPairs reproduces Fig. 4(a)-(d): Bell-Canada, complete
// destruction, 10 flow units per pair, varying the number of demand pairs.
// Four tables: edge repairs, node repairs, total repairs and percentage of
// satisfied demand.
func Fig4VaryDemandPairs(ctx context.Context, cfg Config) (*FigureResult, error) {
	cfg = cfg.withDefaults()
	return bellCanadaSweep(ctx, cfg, true, "Fig. 4", "demand pairs", cfg.DemandPairs, func(pairs int, seed int64) (*scenario.Scenario, error) {
		return bellCanadaScenario(pairs, cfg.FlowPerPair, 0, seed)
	})
}

// Fig5VaryDemandIntensity reproduces Fig. 5(a)-(b): Bell-Canada, complete
// destruction, 4 demand pairs, varying the flow per pair.
func Fig5VaryDemandIntensity(ctx context.Context, cfg Config) (*FigureResult, error) {
	cfg = cfg.withDefaults()
	xs := make([]int, len(cfg.DemandFlows))
	for i, f := range cfg.DemandFlows {
		xs[i] = int(f)
	}
	return bellCanadaSweep(ctx, cfg, true, "Fig. 5", "demand flow per pair", xs, func(flowPerPair int, seed int64) (*scenario.Scenario, error) {
		return bellCanadaScenario(cfg.FixedPairs, float64(flowPerPair), 0, seed)
	})
}

// Fig6VaryDisruption reproduces Fig. 6(a)-(b): Bell-Canada, 4 demand pairs
// of 10 units, geographically-correlated destruction of increasing variance.
func Fig6VaryDisruption(ctx context.Context, cfg Config) (*FigureResult, error) {
	cfg = cfg.withDefaults()
	xs := make([]int, len(cfg.Variances))
	for i, v := range cfg.Variances {
		xs[i] = int(v)
	}
	return bellCanadaSweep(ctx, cfg, true, "Fig. 6", "variance of disruption", xs, func(variance int, seed int64) (*scenario.Scenario, error) {
		return bellCanadaScenario(cfg.FixedPairs, cfg.FlowPerPair, float64(variance), seed)
	})
}

// sweepCell is the per-(x, run) outcome of a Bell-Canada sweep: the broken
// counts of the scenario plus one measurement per non-ALL solver.
type sweepCell struct {
	brokenNodes float64
	brokenEdges float64
	bySolver    map[string]measurement
}

// bellCanadaSweep runs a set of solvers over a one-dimensional sweep of
// Bell-Canada scenarios and assembles the four standard tables. All (x,
// seed) cells execute concurrently on the sweep worker pool; aggregation
// happens in a fixed order afterwards, so the resulting tables are
// deterministic for any worker count.
func bellCanadaSweep(ctx context.Context, cfg Config, withGreedy bool, figure, xLabel string, xs []int, build func(x int, seed int64) (*scenario.Scenario, error)) (*FigureResult, error) {
	names := seriesNames(cfg.solverSet(withGreedy))
	edgeTable := NewTable(figure+"(a): edge repairs", xLabel, names)
	nodeTable := NewTable(figure+"(b): node repairs", xLabel, names)
	totalTable := NewTable(figure+"(c): total repairs", xLabel, names)
	lossTable := NewTable(figure+"(d): percentage of satisfied demand", xLabel, names)

	cells := make([]sweepCell, len(xs)*cfg.Runs)
	err := sweep.ForEach(ctx, cfg.Workers, len(cells), func(ctx context.Context, i int) error {
		x := xs[i/cfg.Runs]
		run := i % cfg.Runs
		s, err := build(x, cfg.Seed+int64(run))
		if err != nil {
			return err
		}
		bn, be := s.NumBroken()
		cell := sweepCell{brokenNodes: float64(bn), brokenEdges: float64(be), bySolver: make(map[string]measurement)}
		for _, solver := range cfg.solverSet(withGreedy) {
			if solver.Name() == heuristics.AllName {
				// ALL is deterministic from the disruption; avoid the
				// (potentially expensive) routing pass.
				continue
			}
			m, err := runSolver(ctx, s, solver)
			if err != nil {
				return err
			}
			cell.bySolver[solver.Name()] = m
		}
		cells[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}

	for xi, x := range xs {
		edgeSums := make(map[string]float64)
		nodeSums := make(map[string]float64)
		totalSums := make(map[string]float64)
		lossSums := make(map[string]float64)
		allBrokenNodes, allBrokenEdges := 0.0, 0.0
		for run := 0; run < cfg.Runs; run++ {
			cell := cells[xi*cfg.Runs+run]
			allBrokenNodes += cell.brokenNodes
			allBrokenEdges += cell.brokenEdges
			for name, m := range cell.bySolver {
				edgeSums[name] += m.edgeRepairs
				nodeSums[name] += m.nodeRepairs
				totalSums[name] += m.nodeRepairs + m.edgeRepairs
				lossSums[name] += m.satisfied
			}
		}
		runs := float64(cfg.Runs)
		edgeRow := map[string]float64{heuristics.AllName: allBrokenEdges / runs}
		nodeRow := map[string]float64{heuristics.AllName: allBrokenNodes / runs}
		totalRow := map[string]float64{heuristics.AllName: (allBrokenNodes + allBrokenEdges) / runs}
		lossRow := map[string]float64{heuristics.AllName: 100}
		for _, name := range names {
			if name == heuristics.AllName {
				continue
			}
			edgeRow[name] = edgeSums[name] / runs
			nodeRow[name] = nodeSums[name] / runs
			totalRow[name] = totalSums[name] / runs
			lossRow[name] = lossSums[name] / runs
		}
		xf := float64(x)
		edgeTable.AddRow(xf, edgeRow)
		nodeTable.AddRow(xf, nodeRow)
		totalTable.AddRow(xf, totalRow)
		lossTable.AddRow(xf, lossRow)
	}
	return &FigureResult{
		Figure: figure,
		Tables: []*Table{edgeTable, nodeTable, totalTable, lossTable},
	}, nil
}
