package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"netrecovery/internal/core"
	"netrecovery/internal/demand"
	"netrecovery/internal/disruption"
	"netrecovery/internal/flow"
	"netrecovery/internal/heuristics"
	"netrecovery/internal/scenario"
	"netrecovery/internal/topology"
)

// Solver labels reused by several figures.
const (
	seriesISP  = core.SolverName
	seriesOPT  = heuristics.OptName
	seriesSRT  = heuristics.SRTName
	seriesGCOM = heuristics.GreedyCommitName
	seriesGNC  = heuristics.GreedyNoCommitName
	seriesALL  = heuristics.AllName
	seriesMCB  = "MCB"
	seriesMCW  = "MCW"
)

// FigureResult bundles every table produced by one figure runner.
type FigureResult struct {
	Figure string
	Tables []*Table
}

// measurement is the per-run outcome of one solver on one scenario.
type measurement struct {
	nodeRepairs float64
	edgeRepairs float64
	satisfied   float64 // percentage of satisfied demand
	runtime     time.Duration
}

// runSolver executes a solver on (a clone of) the scenario and extracts the
// figures' metrics.
func runSolver(s *scenario.Scenario, solver heuristics.Solver) (measurement, error) {
	plan, err := solver.Solve(s)
	if err != nil {
		return measurement{}, fmt.Errorf("%s: %w", solver.Name(), err)
	}
	nodes, edges, _ := plan.NumRepairs()
	return measurement{
		nodeRepairs: float64(nodes),
		edgeRepairs: float64(edges),
		satisfied:   100 * plan.SatisfactionRatio(),
		runtime:     plan.Runtime,
	}, nil
}

// bellCanadaScenario builds one Bell-Canada scenario: far-apart demand pairs
// and either complete destruction or a geographic disruption of the given
// variance (variance <= 0 means complete destruction).
func bellCanadaScenario(pairs int, flowPerPair, variance float64, seed int64) (*scenario.Scenario, error) {
	g := topology.BellCanada()
	rng := rand.New(rand.NewSource(seed))
	dg, err := demand.GenerateFarApartPairs(g, pairs, flowPerPair, rng)
	if err != nil {
		return nil, err
	}
	var d disruption.Disruption
	if variance <= 0 {
		d = disruption.Complete(g)
	} else {
		d = disruption.Geographic(g, disruption.GeographicConfig{Auto: true, Variance: variance, PeakProbability: 1}, rng)
	}
	return &scenario.Scenario{Supply: g, Demand: dg, BrokenNodes: d.Nodes, BrokenEdges: d.Edges}, nil
}

// solverSet assembles the solvers participating in the Bell-Canada figures.
func (c Config) solverSet(withGreedy bool) []heuristics.Solver {
	solvers := []heuristics.Solver{c.ispSolver()}
	if c.IncludeOpt {
		solvers = append(solvers, c.optSolver())
	}
	solvers = append(solvers, &heuristics.SRT{})
	if withGreedy && c.IncludeGreedy {
		solvers = append(solvers, &heuristics.GreedyCommit{}, &heuristics.GreedyNoCommit{})
	}
	solvers = append(solvers, &heuristics.All{})
	return solvers
}

// seriesNames extracts the display names of a solver set.
func seriesNames(solvers []heuristics.Solver) []string {
	names := make([]string, 0, len(solvers))
	for _, s := range solvers {
		names = append(names, s.Name())
	}
	return names
}

// Fig3MulticommodityEnvelope reproduces Fig. 3: the number of total repairs
// of the best (MCB) and worst (MCW) optimal solutions of the multi-commodity
// relaxation, versus OPT and ALL, as the demand flow per pair increases on
// the Bell-Canada topology with complete destruction.
func Fig3MulticommodityEnvelope(cfg Config) (*FigureResult, error) {
	cfg = cfg.withDefaults()
	series := []string{seriesMCB, seriesMCW, seriesALL}
	if cfg.IncludeOpt {
		series = append([]string{seriesOPT}, series...)
	}
	table := NewTable("Fig. 3: total repairs of the multi-commodity envelope", "demand flow per pair", series)

	for _, flowPerPair := range cfg.DemandFlows {
		sums := make(map[string]float64, len(series))
		counted := 0
		for run := 0; run < cfg.Runs; run++ {
			s, err := bellCanadaScenario(cfg.FixedPairs, flowPerPair, 0, cfg.Seed+int64(run))
			if err != nil {
				return nil, err
			}
			mc, err := flow.MulticommodityRelaxation(s)
			if err != nil {
				return nil, err
			}
			if !mc.Feasible {
				continue
			}
			_, _, best := mc.Best.NumRepairs()
			_, _, worst := mc.Worst.NumRepairs()
			sums[seriesMCB] += float64(best)
			sums[seriesMCW] += float64(worst)
			nodes, edges := s.NumBroken()
			sums[seriesALL] += float64(nodes + edges)
			if cfg.IncludeOpt {
				m, err := runSolver(s, cfg.optSolver())
				if err != nil {
					return nil, err
				}
				sums[seriesOPT] += m.nodeRepairs + m.edgeRepairs
			}
			counted++
		}
		if counted == 0 {
			continue
		}
		row := make(map[string]float64, len(sums))
		for k, v := range sums {
			row[k] = v / float64(counted)
		}
		table.AddRow(flowPerPair, row)
	}
	return &FigureResult{Figure: "3", Tables: []*Table{table}}, nil
}

// Fig4VaryDemandPairs reproduces Fig. 4(a)-(d): Bell-Canada, complete
// destruction, 10 flow units per pair, varying the number of demand pairs.
// Four tables: edge repairs, node repairs, total repairs and percentage of
// satisfied demand.
func Fig4VaryDemandPairs(cfg Config) (*FigureResult, error) {
	cfg = cfg.withDefaults()
	solvers := cfg.solverSet(true)
	return bellCanadaSweep(cfg, solvers, "Fig. 4", "demand pairs", cfg.DemandPairs, func(pairs int, seed int64) (*scenario.Scenario, error) {
		return bellCanadaScenario(pairs, cfg.FlowPerPair, 0, seed)
	})
}

// Fig5VaryDemandIntensity reproduces Fig. 5(a)-(b): Bell-Canada, complete
// destruction, 4 demand pairs, varying the flow per pair.
func Fig5VaryDemandIntensity(cfg Config) (*FigureResult, error) {
	cfg = cfg.withDefaults()
	solvers := cfg.solverSet(true)
	xs := make([]int, len(cfg.DemandFlows))
	for i, f := range cfg.DemandFlows {
		xs[i] = int(f)
	}
	return bellCanadaSweep(cfg, solvers, "Fig. 5", "demand flow per pair", xs, func(flowPerPair int, seed int64) (*scenario.Scenario, error) {
		return bellCanadaScenario(cfg.FixedPairs, float64(flowPerPair), 0, seed)
	})
}

// Fig6VaryDisruption reproduces Fig. 6(a)-(b): Bell-Canada, 4 demand pairs
// of 10 units, geographically-correlated destruction of increasing variance.
func Fig6VaryDisruption(cfg Config) (*FigureResult, error) {
	cfg = cfg.withDefaults()
	solvers := cfg.solverSet(true)
	xs := make([]int, len(cfg.Variances))
	for i, v := range cfg.Variances {
		xs[i] = int(v)
	}
	return bellCanadaSweep(cfg, solvers, "Fig. 6", "variance of disruption", xs, func(variance int, seed int64) (*scenario.Scenario, error) {
		return bellCanadaScenario(cfg.FixedPairs, cfg.FlowPerPair, float64(variance), seed)
	})
}

// bellCanadaSweep runs a set of solvers over a one-dimensional sweep of
// Bell-Canada scenarios and assembles the four standard tables.
func bellCanadaSweep(cfg Config, solvers []heuristics.Solver, figure, xLabel string, xs []int, build func(x int, seed int64) (*scenario.Scenario, error)) (*FigureResult, error) {
	names := seriesNames(solvers)
	edgeTable := NewTable(figure+"(a): edge repairs", xLabel, names)
	nodeTable := NewTable(figure+"(b): node repairs", xLabel, names)
	totalTable := NewTable(figure+"(c): total repairs", xLabel, names)
	lossTable := NewTable(figure+"(d): percentage of satisfied demand", xLabel, names)

	for _, x := range xs {
		edgeSums := make(map[string]float64)
		nodeSums := make(map[string]float64)
		totalSums := make(map[string]float64)
		lossSums := make(map[string]float64)
		allBrokenNodes, allBrokenEdges := 0.0, 0.0
		for run := 0; run < cfg.Runs; run++ {
			s, err := build(x, cfg.Seed+int64(run))
			if err != nil {
				return nil, err
			}
			bn, be := s.NumBroken()
			allBrokenNodes += float64(bn)
			allBrokenEdges += float64(be)
			for _, solver := range solvers {
				if solver.Name() == heuristics.AllName {
					// ALL is deterministic from the disruption; avoid the
					// (potentially expensive) routing pass.
					continue
				}
				m, err := runSolver(s, solver)
				if err != nil {
					return nil, err
				}
				edgeSums[solver.Name()] += m.edgeRepairs
				nodeSums[solver.Name()] += m.nodeRepairs
				totalSums[solver.Name()] += m.nodeRepairs + m.edgeRepairs
				lossSums[solver.Name()] += m.satisfied
			}
		}
		runs := float64(cfg.Runs)
		edgeRow := map[string]float64{heuristics.AllName: allBrokenEdges / runs}
		nodeRow := map[string]float64{heuristics.AllName: allBrokenNodes / runs}
		totalRow := map[string]float64{heuristics.AllName: (allBrokenNodes + allBrokenEdges) / runs}
		lossRow := map[string]float64{heuristics.AllName: 100}
		for _, name := range names {
			if name == heuristics.AllName {
				continue
			}
			edgeRow[name] = edgeSums[name] / runs
			nodeRow[name] = nodeSums[name] / runs
			totalRow[name] = totalSums[name] / runs
			lossRow[name] = lossSums[name] / runs
		}
		xf := float64(x)
		edgeTable.AddRow(xf, edgeRow)
		nodeTable.AddRow(xf, nodeRow)
		totalTable.AddRow(xf, totalRow)
		lossTable.AddRow(xf, lossRow)
	}
	return &FigureResult{
		Figure: figure,
		Tables: []*Table{edgeTable, nodeTable, totalTable, lossTable},
	}, nil
}
