package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden fixtures:
// go test ./internal/experiments -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

// goldenTable returns a fixed table exercising row sorting, missing series
// values and the float trimming of the renderer.
func goldenTable() *Table {
	table := NewTable("Fig. X(c): total repairs", "demand pairs", []string{"ISP", "OPT", "SRT", "ALL"})
	table.AddRow(3, map[string]float64{"ISP": 12.5, "OPT": 12, "SRT": 14.25, "ALL": 40})
	table.AddRow(1, map[string]float64{"ISP": 6, "OPT": 6, "SRT": 7.3333, "ALL": 40})
	table.AddRow(2, map[string]float64{"ISP": 9.1, "SRT": 10.75, "ALL": 40}) // OPT missing: rendered as "-"
	return table
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden file %s (regenerate with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s does not match the golden file (regenerate with -update if the change is intended)\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenTableRender(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTable().Render(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table.txt", buf.Bytes())
}

func TestGoldenTableCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTable().CSV(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table.csv", buf.Bytes())
}
