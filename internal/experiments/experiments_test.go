package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"netrecovery/internal/heuristics"
)

// tiny returns the smallest configuration that still exercises every code
// path of the runners, so the test suite stays fast.
func tiny() Config {
	return Config{
		Runs:          1,
		Seed:          1,
		IncludeOpt:    false,
		IncludeGreedy: true,
		FastISP:       true,
		DemandPairs:   []int{1, 2},
		DemandFlows:   []float64{4, 10},
		Variances:     []float64{20, 60},
		EdgeProbs:     []float64{0.2},
		FlowPerPair:   10,
		FixedPairs:    2,
		ErdosNodes:    16,
		ErdosDemands:  2,
		ErdosCapacity: 1000,
		OptMaxNodes:   30,
		OptTimeLimit:  5 * time.Second,
	}
}

func TestTableOperations(t *testing.T) {
	table := NewTable("demo", "x", []string{"a", "b"})
	table.AddRow(2, map[string]float64{"a": 1, "b": 2})
	table.AddRow(1, map[string]float64{"a": 3})
	if len(table.Rows) != 2 || table.Rows[0].X != 1 {
		t.Fatalf("rows not sorted: %+v", table.Rows)
	}
	if v, ok := table.Value(2, "b"); !ok || v != 2 {
		t.Errorf("Value(2, b) = %f, %v", v, ok)
	}
	if _, ok := table.Value(9, "a"); ok {
		t.Error("Value for missing x should report false")
	}
	var buf bytes.Buffer
	if err := table.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "demo") || !strings.Contains(buf.String(), "-") {
		t.Errorf("render output missing pieces: %q", buf.String())
	}
	buf.Reset()
	if err := table.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "x,a,b\n") {
		t.Errorf("csv header = %q", buf.String())
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Runs <= 0 || cfg.FlowPerPair != 10 || cfg.FixedPairs != 4 {
		t.Errorf("defaults = %+v", cfg)
	}
	paper := Paper()
	if paper.Runs != 20 || len(paper.DemandPairs) != 7 {
		t.Errorf("paper config = %+v", paper)
	}
	quick := Quick()
	if quick.Runs >= paper.Runs {
		t.Error("quick config should use fewer runs than the paper config")
	}
}

func TestFig4QuickShape(t *testing.T) {
	res, err := Fig4VaryDemandPairs(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 4 {
		t.Fatalf("tables = %d, want 4", len(res.Tables))
	}
	total := res.Tables[2]
	if len(total.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(total.Rows))
	}
	for _, row := range total.Rows {
		isp := row.Values[seriesISP]
		all := row.Values[seriesALL]
		if isp <= 0 {
			t.Errorf("x=%v: ISP repairs = %f, want > 0", row.X, isp)
		}
		if isp > all {
			t.Errorf("x=%v: ISP repairs %f exceed ALL %f", row.X, isp, all)
		}
	}
	// Repairs must not decrease when demand pairs increase.
	if total.Rows[1].Values[seriesISP]+1e-9 < total.Rows[0].Values[seriesISP] {
		t.Errorf("ISP repairs decreased with more demand pairs: %v", total.Rows)
	}
	// ISP never loses demand.
	loss := res.Tables[3]
	for _, row := range loss.Rows {
		if row.Values[seriesISP] < 100-1e-6 {
			t.Errorf("ISP satisfied %% = %f at x=%v, want 100", row.Values[seriesISP], row.X)
		}
	}
}

func TestFig5QuickShape(t *testing.T) {
	res, err := Fig5VaryDemandIntensity(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	total := res.Tables[2]
	if len(total.Rows) != 2 {
		t.Fatalf("rows = %v", total.Rows)
	}
	if total.Rows[1].Values[seriesISP]+1e-9 < total.Rows[0].Values[seriesISP] {
		t.Errorf("ISP repairs should not decrease with demand intensity: %v", total.Rows)
	}
}

func TestFig6QuickShape(t *testing.T) {
	res, err := Fig6VaryDisruption(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	total := res.Tables[2]
	if len(total.Rows) != 2 {
		t.Fatalf("rows = %v", total.Rows)
	}
	// Larger variance destroys more, so ALL grows; ISP stays below ALL.
	if total.Rows[1].Values[seriesALL] <= total.Rows[0].Values[seriesALL] {
		t.Errorf("ALL should grow with variance: %v", total.Rows)
	}
	for _, row := range total.Rows {
		if row.Values[seriesISP] > row.Values[seriesALL] {
			t.Errorf("ISP above ALL at x=%v", row.X)
		}
	}
}

func TestFig3Quick(t *testing.T) {
	cfg := tiny()
	res, err := Fig3MulticommodityEnvelope(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	table := res.Tables[0]
	if len(table.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range table.Rows {
		mcb := row.Values[seriesMCB]
		mcw := row.Values[seriesMCW]
		all := row.Values[seriesALL]
		if mcb > mcw+1e-9 {
			t.Errorf("MCB %f exceeds MCW %f at x=%v", mcb, mcw, row.X)
		}
		if mcw > all+1e-9 {
			t.Errorf("MCW %f exceeds ALL %f at x=%v", mcw, all, row.X)
		}
	}
}

func TestFig7Quick(t *testing.T) {
	res, err := Fig7ErdosRenyiScalability(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 2 {
		t.Fatalf("tables = %d", len(res.Tables))
	}
	repairs := res.Tables[1]
	for _, row := range repairs.Rows {
		if row.Values[seriesISP] <= 0 || row.Values[seriesSRT] <= 0 {
			t.Errorf("expected positive repairs, got %v", row.Values)
		}
	}
}

func TestFig8Statistics(t *testing.T) {
	res, err := Fig8CAIDAStatistics(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	table := res.Tables[0]
	if v, _ := table.Value(1, "value"); v != 825 {
		t.Errorf("nodes = %f, want 825", v)
	}
	if v, _ := table.Value(2, "value"); v != 1018 {
		t.Errorf("edges = %f, want 1018", v)
	}
}

func TestFig9Quick(t *testing.T) {
	cfg := tiny()
	cfg.DemandPairs = []int{1, 2}
	res, err := Fig9CAIDA(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	loss := res.Tables[1]
	for _, row := range loss.Rows {
		if row.Values[seriesISP] < 100-1e-6 {
			t.Errorf("ISP satisfied %% = %f, want 100 (x=%v)", row.Values[seriesISP], row.X)
		}
	}
	repairs := res.Tables[0]
	if repairs.Rows[1].Values[seriesISP]+1e-9 < repairs.Rows[0].Values[seriesISP] {
		t.Errorf("ISP repairs should not decrease with more pairs: %v", repairs.Rows)
	}
}

func TestRunDispatcherAndFigures(t *testing.T) {
	if len(Figures()) != 7 {
		t.Errorf("Figures = %v", Figures())
	}
	if _, err := Run(context.Background(), "8", tiny()); err != nil {
		t.Errorf("Run(8): %v", err)
	}
	if _, err := Run(context.Background(), "bogus", tiny()); err == nil {
		t.Error("expected error for unknown figure")
	}
}

func TestAblationCentrality(t *testing.T) {
	cfg := tiny()
	cfg.DemandPairs = []int{2}
	res, err := AblationCentrality(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 2 {
		t.Fatalf("tables = %d", len(res.Tables))
	}
	repairs := res.Tables[0]
	for _, row := range repairs.Rows {
		for _, name := range []string{VariantFull, VariantBetweenness, VariantStaticMetric, VariantNoPruning} {
			if row.Values[name] <= 0 {
				t.Errorf("variant %s has no repairs at x=%v", name, row.X)
			}
		}
	}
}

func TestFig4WithOptQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping OPT-enabled sweep in short mode")
	}
	cfg := tiny()
	cfg.IncludeOpt = true
	cfg.DemandPairs = []int{2}
	res, err := Fig4VaryDemandPairs(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := res.Tables[2]
	for _, row := range total.Rows {
		opt := row.Values[heuristics.OptName]
		isp := row.Values[seriesISP]
		if opt > isp+1e-9 {
			t.Errorf("OPT repairs %f exceed ISP repairs %f (warm start guarantees <=)", opt, isp)
		}
	}
}

func TestCompareOnScenario(t *testing.T) {
	cfg := tiny()
	s, err := bellCanadaScenario(2, 10, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	table, err := CompareOnScenario(context.Background(), s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	legend := SeriesLegend(cfg)
	if len(table.Rows) != len(legend) {
		t.Errorf("rows = %d, legend = %d", len(table.Rows), len(legend))
	}
}
