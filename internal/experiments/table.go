// Package experiments reproduces the paper's evaluation (§VII): every figure
// has a runner that builds the corresponding scenarios, executes the
// configured solvers over multiple seeds and returns the averaged series as
// a Table whose rows match the points plotted in the paper.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table is one chart of the evaluation: an x axis, a set of named series and
// one row per x value with the average value of every series.
type Table struct {
	// Title identifies the figure (e.g. "Fig. 4(c) total repairs").
	Title string
	// XLabel describes the x axis (e.g. "demand pairs").
	XLabel string
	// Series lists the column names in presentation order.
	Series []string
	// Rows holds one entry per x value.
	Rows []Row
}

// Row is one x value with the value of every series at that x.
type Row struct {
	X      float64
	Values map[string]float64
}

// NewTable returns an empty table with the given metadata.
func NewTable(title, xLabel string, series []string) *Table {
	return &Table{Title: title, XLabel: xLabel, Series: append([]string(nil), series...)}
}

// AddRow appends a row (values are copied).
func (t *Table) AddRow(x float64, values map[string]float64) {
	row := Row{X: x, Values: make(map[string]float64, len(values))}
	for k, v := range values {
		row.Values[k] = v
	}
	t.Rows = append(t.Rows, row)
	sort.Slice(t.Rows, func(i, j int) bool { return t.Rows[i].X < t.Rows[j].X })
}

// Value returns the value of a series at the given x (false when absent).
func (t *Table) Value(x float64, series string) (float64, bool) {
	for _, r := range t.Rows {
		if r.X == x {
			v, ok := r.Values[series]
			return v, ok
		}
	}
	return 0, false
}

// Render writes a human-readable fixed-width table.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
		return err
	}
	header := make([]string, 0, len(t.Series)+1)
	header = append(header, pad(t.XLabel, 14))
	for _, s := range t.Series {
		header = append(header, pad(s, 10))
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, " ")); err != nil {
		return err
	}
	for _, r := range t.Rows {
		cells := make([]string, 0, len(t.Series)+1)
		cells = append(cells, pad(trimFloat(r.X), 14))
		for _, s := range t.Series {
			v, ok := r.Values[s]
			if !ok {
				cells = append(cells, pad("-", 10))
				continue
			}
			cells = append(cells, pad(trimFloat(v), 10))
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, " ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV writes the table as comma-separated values with a header row.
func (t *Table) CSV(w io.Writer) error {
	cols := append([]string{t.XLabel}, t.Series...)
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, r := range t.Rows {
		cells := []string{trimFloat(r.X)}
		for _, s := range t.Series {
			cells = append(cells, trimFloat(r.Values[s]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}
