package experiments

import (
	"context"

	"netrecovery/internal/core"
	"netrecovery/internal/heuristics"
	"netrecovery/internal/scenario"
	"netrecovery/internal/sweep"
)

// AblationResult reports the total repairs and satisfied demand of a set of
// ISP variants on the same scenarios, isolating the design choices the paper
// calls out: the demand-based centrality metric (vs classical betweenness),
// the dynamic path metric (vs a static capacity-only metric) and pruning.
type AblationResult struct {
	Table *Table
}

// Ablation variant labels.
const (
	VariantFull          = "ISP"
	VariantBetweenness   = "ISP-betweenness"
	VariantStaticMetric  = "ISP-static-metric"
	VariantNoPruning     = "ISP-no-pruning"
	ablationRepairSuffix = " repairs"
	ablationLossSuffix   = " satisfied %"
)

// ablationVariants returns the ISP configurations compared by the ablation.
func ablationVariants(fast bool) map[string]core.Options {
	base := core.Options{}
	if fast {
		base.SplitMode = core.SplitGreedy
	}
	withBetweenness := base
	withBetweenness.Centrality = core.CentralityBetweenness
	withStatic := base
	withStatic.DisableDynamicPathMetric = true
	withoutPruning := base
	withoutPruning.DisablePruning = true
	return map[string]core.Options{
		VariantFull:         base,
		VariantBetweenness:  withBetweenness,
		VariantStaticMetric: withStatic,
		VariantNoPruning:    withoutPruning,
	}
}

// AblationCentrality runs the ISP variants over the Bell-Canada scenarios of
// Fig. 4 (varying demand pairs) and reports total repairs per variant. The
// (pairs, seed) cells run concurrently on the sweep worker pool.
func AblationCentrality(ctx context.Context, cfg Config) (*FigureResult, error) {
	cfg = cfg.withDefaults()
	variants := ablationVariants(cfg.FastISP)
	names := []string{VariantFull, VariantBetweenness, VariantStaticMetric, VariantNoPruning}
	repairs := NewTable("Ablation: total repairs of ISP variants", "demand pairs", names)
	satisfied := NewTable("Ablation: satisfied demand of ISP variants (%)", "demand pairs", names)

	cells := make([]map[string]measurement, len(cfg.DemandPairs)*cfg.Runs)
	err := sweep.ForEach(ctx, cfg.Workers, len(cells), func(ctx context.Context, i int) error {
		pairs := cfg.DemandPairs[i/cfg.Runs]
		run := i % cfg.Runs
		s, err := bellCanadaScenario(pairs, cfg.FlowPerPair, 0, cfg.Seed+int64(run))
		if err != nil {
			return err
		}
		cell := make(map[string]measurement, len(names))
		for _, name := range names {
			m, err := runSolver(ctx, s, &heuristics.ISPSolver{Options: variants[name]})
			if err != nil {
				return err
			}
			cell[name] = m
		}
		cells[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}

	for pi, pairs := range cfg.DemandPairs {
		repairSums := make(map[string]float64)
		lossSums := make(map[string]float64)
		for run := 0; run < cfg.Runs; run++ {
			for name, m := range cells[pi*cfg.Runs+run] {
				repairSums[name] += m.nodeRepairs + m.edgeRepairs
				lossSums[name] += m.satisfied
			}
		}
		repairRow := make(map[string]float64)
		lossRow := make(map[string]float64)
		for _, name := range names {
			repairRow[name] = repairSums[name] / float64(cfg.Runs)
			lossRow[name] = lossSums[name] / float64(cfg.Runs)
		}
		repairs.AddRow(float64(pairs), repairRow)
		satisfied.AddRow(float64(pairs), lossRow)
	}
	return &FigureResult{Figure: "ablation", Tables: []*Table{repairs, satisfied}}, nil
}

// CompareOnScenario runs every configured solver once on a single scenario
// and returns one row per solver (used by cmd/nrecover and the examples).
func CompareOnScenario(ctx context.Context, s *scenario.Scenario, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	solvers := cfg.solverSet(cfg.IncludeGreedy)
	table := NewTable("solver comparison", "solver", []string{"node repairs", "edge repairs", "total", "satisfied %", "runtime (s)"})
	for i, solver := range solvers {
		m, err := runSolver(ctx, s, solver)
		if err != nil {
			return nil, err
		}
		table.AddRow(float64(i+1), map[string]float64{
			"node repairs": m.nodeRepairs,
			"edge repairs": m.edgeRepairs,
			"total":        m.nodeRepairs + m.edgeRepairs,
			"satisfied %":  m.satisfied,
			"runtime (s)":  m.runtime.Seconds(),
		})
	}
	return table, nil
}

// SeriesLegend returns the solver names in the order CompareOnScenario used.
func SeriesLegend(cfg Config) []string {
	cfg = cfg.withDefaults()
	return seriesNames(cfg.solverSet(cfg.IncludeGreedy))
}
