package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"netrecovery/internal/core"
	"netrecovery/internal/demand"
	"netrecovery/internal/disruption"
	"netrecovery/internal/flow"
	"netrecovery/internal/graph"
	"netrecovery/internal/heuristics"
	"netrecovery/internal/scenario"
	"netrecovery/internal/sweep"
	"netrecovery/internal/topology"
)

// Fig7ErdosRenyiScalability reproduces Fig. 7(a)-(b): Erdős–Rényi topologies
// of increasing edge probability, 5 unit demands, capacity 1000 per link and
// complete edge destruction (a Steiner-forest-like instance, §VII-B). Two
// tables: execution time in seconds and total repairs, for ISP, SRT and
// (when enabled) OPT. Unlike the other figures, the cells run serially so
// the reported execution times are measured on an uncontended CPU.
func Fig7ErdosRenyiScalability(ctx context.Context, cfg Config) (*FigureResult, error) {
	cfg = cfg.withDefaults()
	names := []string{seriesISP, seriesSRT}
	if cfg.IncludeOpt {
		names = append(names, seriesOPT)
	}
	timeTable := NewTable("Fig. 7(a): execution time (seconds)", "edge probability", names)
	repairTable := NewTable("Fig. 7(b): total repairs", "edge probability", names)

	// This figure reports execution times, so its cells run serially (one
	// worker) regardless of cfg.Workers: concurrent solver runs would contend
	// for CPU and inflate the very measurement the figure exists to report.
	cells := make([]map[string]measurement, len(cfg.EdgeProbs)*cfg.Runs)
	err := sweep.ForEach(ctx, 1, len(cells), func(ctx context.Context, i int) error {
		p := cfg.EdgeProbs[i/cfg.Runs]
		run := i % cfg.Runs
		s, err := erdosScenario(cfg, p, cfg.Seed+int64(run))
		if err != nil {
			return err
		}
		solvers := []heuristics.Solver{erdosISPSolver(cfg), &heuristics.SRT{}}
		if cfg.IncludeOpt {
			solvers = append(solvers, cfg.optSolver())
		}
		cell := make(map[string]measurement, len(solvers))
		for _, solver := range solvers {
			m, err := runSolver(ctx, s, solver)
			if err != nil {
				return err
			}
			cell[solver.Name()] = m
		}
		cells[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}

	for pi, p := range cfg.EdgeProbs {
		timeSums := make(map[string]float64)
		repairSums := make(map[string]float64)
		counted := 0
		for run := 0; run < cfg.Runs; run++ {
			cell := cells[pi*cfg.Runs+run]
			if cell == nil {
				continue
			}
			for name, m := range cell {
				timeSums[name] += m.runtime.Seconds()
				repairSums[name] += m.nodeRepairs + m.edgeRepairs
			}
			counted++
		}
		if counted == 0 {
			continue
		}
		timeRow := make(map[string]float64)
		repairRow := make(map[string]float64)
		for _, name := range names {
			timeRow[name] = timeSums[name] / float64(counted)
			repairRow[name] = repairSums[name] / float64(counted)
		}
		timeTable.AddRow(p, timeRow)
		repairTable.AddRow(p, repairRow)
	}
	return &FigureResult{Figure: "7", Tables: []*Table{timeTable, repairTable}}, nil
}

// erdosISPSolver returns ISP configured for the connectivity-style
// Erdős–Rényi instances: the greedy split mode and constructive routability
// keep the runtime flat as the graph densifies, matching the "negligible and
// not affected by p" observation of §VII-B.
func erdosISPSolver(cfg Config) heuristics.Solver {
	opts := core.Options{}
	if cfg.FastISP || cfg.ErdosNodes > 40 {
		opts.SplitMode = core.SplitGreedy
		opts.Routability = flow.Options{Mode: flow.ModeConstructive}
	}
	return &heuristics.ISPSolver{Options: opts}
}

// erdosScenario builds one Fig. 7 instance: connected G(n, p), unit demands
// between distinct random pairs, every edge destroyed, huge capacities.
func erdosScenario(cfg Config, p float64, seed int64) (*scenario.Scenario, error) {
	rng := rand.New(rand.NewSource(seed))
	var g *graph.Graph
	for attempt := 0; attempt < 50; attempt++ {
		candidate, err := topology.ErdosRenyi(cfg.ErdosNodes, p, topology.DefaultConfig(cfg.ErdosCapacity), rng)
		if err != nil {
			return nil, err
		}
		if len(candidate.GiantComponent()) == candidate.NumNodes() {
			g = candidate
			break
		}
	}
	if g == nil {
		return nil, fmt.Errorf("experiments: could not generate a connected G(%d, %.2f) in 50 attempts", cfg.ErdosNodes, p)
	}
	dg, err := demand.GenerateUniformPairs(g, cfg.ErdosDemands, 1, rng)
	if err != nil {
		return nil, err
	}
	d := disruption.EdgesOnly(g)
	return &scenario.Scenario{Supply: g, Demand: dg, BrokenNodes: d.Nodes, BrokenEdges: d.Edges}, nil
}

// Fig8CAIDAStatistics reproduces Fig. 8: the CAIDA AS28717-like topology.
// Since the original figure is a rendering of the topology, the runner
// reports its structural statistics (nodes, edges, max degree, diameter of a
// sampled subgraph) so the generated stand-in can be compared against the
// real data set.
func Fig8CAIDAStatistics(ctx context.Context, cfg Config) (*FigureResult, error) {
	cfg = cfg.withDefaults()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g := topology.CAIDALike(topology.DefaultConfig(22), rand.New(rand.NewSource(cfg.Seed)))
	table := NewTable("Fig. 8: CAIDA-like topology statistics", "statistic", []string{"value"})
	table.AddRow(1, map[string]float64{"value": float64(g.NumNodes())})
	table.AddRow(2, map[string]float64{"value": float64(g.NumEdges())})
	table.AddRow(3, map[string]float64{"value": float64(g.MaxDegree())})
	table.AddRow(4, map[string]float64{"value": float64(len(g.GiantComponent()))})
	return &FigureResult{Figure: "8", Tables: []*Table{table}}, nil
}

// Fig9CAIDA reproduces Fig. 9(a)-(b): the 825-node CAIDA-like topology, 22
// flow units per pair, geographically-correlated disruption, varying the
// number of demand pairs. Two tables: total repairs and percentage of
// satisfied demand, for ISP and SRT. The greedy heuristics are omitted as in
// the paper ("they do not scale to large topologies"); OPT is omitted as
// well because the dense-LP branch-and-bound substrate cannot hold the
// 825-node flow model in memory (see EXPERIMENTS.md for the substitution
// note — the paper's OPT curve at this scale comes from Gurobi).
func Fig9CAIDA(ctx context.Context, cfg Config) (*FigureResult, error) {
	cfg = cfg.withDefaults()
	flowPerPair := cfg.FlowPerPair
	if flowPerPair == 10 {
		flowPerPair = 22 // paper's setting for this figure
	}
	names := []string{seriesISP, seriesSRT}
	repairTable := NewTable("Fig. 9(a): total repairs", "demand pairs", names)
	lossTable := NewTable("Fig. 9(b): percentage of satisfied demand", "demand pairs", names)

	cells := make([]map[string]measurement, len(cfg.DemandPairs)*cfg.Runs)
	err := sweep.ForEach(ctx, cfg.Workers, len(cells), func(ctx context.Context, i int) error {
		pairs := cfg.DemandPairs[i/cfg.Runs]
		run := i % cfg.Runs
		s, err := caidaScenario(cfg, pairs, flowPerPair, cfg.Seed+int64(run))
		if err != nil {
			return err
		}
		cell := make(map[string]measurement, 2)
		for _, solver := range []heuristics.Solver{caidaISPSolver(), &heuristics.SRT{}} {
			m, err := runSolver(ctx, s, solver)
			if err != nil {
				return err
			}
			cell[solver.Name()] = m
		}
		cells[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}

	for pi, pairs := range cfg.DemandPairs {
		repairSums := make(map[string]float64)
		lossSums := make(map[string]float64)
		counted := 0
		for run := 0; run < cfg.Runs; run++ {
			cell := cells[pi*cfg.Runs+run]
			if cell == nil {
				continue
			}
			for name, m := range cell {
				repairSums[name] += m.nodeRepairs + m.edgeRepairs
				lossSums[name] += m.satisfied
			}
			counted++
		}
		if counted == 0 {
			continue
		}
		repairRow := make(map[string]float64)
		lossRow := make(map[string]float64)
		for _, name := range names {
			repairRow[name] = repairSums[name] / float64(counted)
			lossRow[name] = lossSums[name] / float64(counted)
		}
		repairTable.AddRow(float64(pairs), repairRow)
		lossTable.AddRow(float64(pairs), lossRow)
	}
	return &FigureResult{Figure: "9", Tables: []*Table{repairTable, lossTable}}, nil
}

// caidaISPSolver returns ISP configured for the 825-node topology: greedy
// splits and constructive routability, since the exact LPs would not fit the
// dense simplex substrate at this scale (see DESIGN.md).
func caidaISPSolver() heuristics.Solver {
	return &heuristics.ISPSolver{Options: core.Options{
		SplitMode:   core.SplitGreedy,
		Routability: flow.Options{Mode: flow.ModeConstructive},
	}}
}

// caidaScenario builds one Fig. 9 instance: CAIDA-like topology, geographic
// disruption sized to damage a substantial region, far-apart demand pairs.
func caidaScenario(cfg Config, pairs int, flowPerPair float64, seed int64) (*scenario.Scenario, error) {
	rng := rand.New(rand.NewSource(seed))
	g := topology.CAIDALike(topology.DefaultConfig(25), rng)
	dg, err := demand.GenerateFarApartPairs(g, pairs, flowPerPair, rng)
	if err != nil {
		return nil, err
	}
	d := disruption.Geographic(g, disruption.GeographicConfig{Auto: true, Variance: 400, PeakProbability: 1}, rng)
	// Demand endpoints that happen to be destroyed stay destroyed (they will
	// simply be repaired); nothing to adjust.
	return &scenario.Scenario{Supply: g, Demand: dg, BrokenNodes: d.Nodes, BrokenEdges: d.Edges}, nil
}

// Run executes the runner for the given figure identifier ("3" .. "9").
func Run(ctx context.Context, figure string, cfg Config) (*FigureResult, error) {
	switch figure {
	case "3":
		return Fig3MulticommodityEnvelope(ctx, cfg)
	case "4":
		return Fig4VaryDemandPairs(ctx, cfg)
	case "5":
		return Fig5VaryDemandIntensity(ctx, cfg)
	case "6":
		return Fig6VaryDisruption(ctx, cfg)
	case "7":
		return Fig7ErdosRenyiScalability(ctx, cfg)
	case "8":
		return Fig8CAIDAStatistics(ctx, cfg)
	case "9":
		return Fig9CAIDA(ctx, cfg)
	default:
		return nil, fmt.Errorf("experiments: unknown figure %q (available: 3-9)", figure)
	}
}

// Figures lists the figure identifiers with a registered runner.
func Figures() []string { return []string{"3", "4", "5", "6", "7", "8", "9"} }
