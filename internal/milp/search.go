// Parallel branch and bound with deterministic work-stealing.
//
// The search runs in synchronous best-first rounds. Each round the
// coordinator pops the batchSize globally best open nodes from the
// lock-striped node pool — a deterministic selection, because nodes are
// ordered by (bound, id) and IDs are unique — and hands them to N worker
// goroutines through per-worker rank deques with steal-from-the-back for
// idle workers. Every worker owns its own relaxer (problem clone + reusable
// lp.Solver), so factorisations and work buffers stay thread-local, and the
// LP solves run in lp.Options.Deterministic mode, so a node's relaxation is
// a pure function of the node — not of which worker solves it after which
// history. Workers read the shared atomic incumbent (stable mid-round: the
// coordinator writes it only at round barriers) to skip dominated nodes and
// push child nodes straight into the pool; integral candidates are carried
// back to the barrier, where the coordinator commits incumbents in rank
// order ("ordered incumbent acceptance").
//
// Because every decision that shapes the tree — batch composition, child
// IDs, domination checks, incumbent acceptance — depends only on
// round-barrier state and deterministic ordering, the full search trace
// (explored nodes, incumbent sequence, final plan, node count) is identical
// run to run AND across worker counts; only wall-clock varies. The one
// caveat is wall-clock limits: a search cut short by TimeLimit or a context
// deadline stops at a timing-dependent round, exactly as the sequential
// search stopped at a timing-dependent node.
package milp

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"netrecovery/internal/lp"
)

// batchSize is the number of open nodes selected per synchronous round. It
// is a fixed constant, NOT derived from Options.Workers: a worker-dependent
// batch would change which nodes are explored before each incumbent commit
// and break plan equality across worker counts. 32 keeps the round barrier
// amortised over tens of LP solves while bounding the best-first staleness
// (nodes within a round are selected without the round's own incumbents).
const batchSize = 32

// batchItem is one node of a round plus the outcome of its processing,
// written by exactly one worker and read by the coordinator after the
// barrier.
type batchItem struct {
	node *node
	// done is false when the context fired before any worker claimed the
	// item; the coordinator returns such nodes to the pool.
	done bool
	// pruned marks a node dominated by the shared incumbent at solve time
	// (its LP was skipped).
	pruned    bool
	status    lp.Status
	objective float64
	// branchVar is the most fractional binary (-1 when the relaxation is
	// integral); values carries the integral solution for incumbent
	// acceptance at the barrier.
	branchVar int
	values    []float64
}

// search carries the shared state of one Solve call.
type search struct {
	p        Problem
	opts     Options
	minimize bool
	tol      float64
	workers  int
	deadline time.Time

	pool     *nodePool
	relaxers []*relaxer

	// Shared atomic incumbent objective (float bits). The coordinator
	// stores it at round barriers only, so worker reads are stable within
	// a round — the shared state is concurrent but never racy-in-effect,
	// which is what keeps mid-round pruning deterministic. It uses +Inf
	// (minimisation) / -Inf (maximisation) as the "none yet" sentinel,
	// which every finite objective improves on. (The best open bound needs
	// no twin: workers prune on their node's own bound, and the pool's
	// stripe heads yield the global bound on demand.)
	incumbentBits atomic.Uint64

	// Depth telemetry (Solution.Stats). steals is scheduling-dependent;
	// the LP aggregates are deterministic for the deterministic schedule
	// (atomics only because workers write them concurrently).
	steals      atomic.Int64
	lpIters     atomic.Int64
	lpRefactors atomic.Int64
	lpWarm      atomic.Int64
	lpCold      atomic.Int64
}

func newSearch(p Problem, opts Options) *search {
	workers := opts.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	minimize := senseOf(p.LP) == lp.Minimize
	return &search{
		p:        p,
		opts:     opts,
		minimize: minimize,
		tol:      opts.Tolerance,
		workers:  workers,
		pool:     newNodePool(minimize),
		relaxers: make([]*relaxer, workers),
	}
}

// better reports whether objective a strictly improves on b.
func (s *search) better(a, b float64) bool {
	if s.minimize {
		return a < b-s.tol
	}
	return a > b+s.tol
}

func (s *search) loadIncumbent() float64 {
	return math.Float64frombits(s.incumbentBits.Load())
}

func (s *search) storeIncumbent(v float64) {
	s.incumbentBits.Store(math.Float64bits(v))
}

// relaxer returns worker w's private relaxer, creating it on first use.
// Only worker w touches slot w, so no locking is needed.
func (s *search) relaxer(w int) *relaxer {
	if s.relaxers[w] == nil {
		s.relaxers[w] = newRelaxer(s.p, s.opts)
	}
	return s.relaxers[w]
}

// run executes the search and assembles the Solution.
func (s *search) run(ctx context.Context) Solution {
	start := time.Now()
	if s.opts.TimeLimit > 0 {
		s.deadline = start.Add(s.opts.TimeLimit)
	}

	incumbentObj := math.Inf(1)
	rootBound := math.Inf(-1)
	iterDropBound := math.Inf(1)
	if !s.minimize {
		incumbentObj, rootBound, iterDropBound = -incumbentObj, -rootBound, -iterDropBound
	}
	if s.opts.WarmStart != nil {
		incumbentObj = s.opts.WarmStartObjective
	}
	s.storeIncumbent(incumbentObj)
	var incumbentValues []float64

	s.pool.push(&node{id: 0, fixed: map[int]float64{}, bound: rootBound})
	nextID := uint64(1)

	nodes := 0
	rounds := 0
	var incumbents []IncumbentEvent
	sawFeasibleRelaxation := false
	sawIterLimit := false
	hitLimit := false
	items := make([]batchItem, 0, batchSize)

	for s.pool.len() > 0 {
		if ctx.Err() != nil || nodes >= s.opts.MaxNodes || (s.opts.TimeLimit > 0 && time.Since(start) > s.opts.TimeLimit) {
			hitLimit = true
			break
		}
		limit := batchSize
		if rem := s.opts.MaxNodes - nodes; rem < limit {
			limit = rem
		}
		items = s.pool.popBatch(items[:0], limit)
		// Child IDs are reserved per rank up front (2 per node, taken or
		// not), so workers can mint them without coordination and the IDs
		// are independent of solve order.
		roundBase := nextID
		nextID += 2 * uint64(len(items))
		rounds++
		s.solveBatch(ctx, items, roundBase, s.pool.len())

		// Ordered commit: results are applied in rank (= best-first
		// selection) order, so the incumbent sequence does not depend on
		// which worker finished first.
		aborted := false
		for rank := range items {
			it := &items[rank]
			if !it.done {
				s.pool.push(it.node)
				aborted = true
				continue
			}
			nodes++
			if s.opts.Progress != nil && nodes%progressInterval == 0 {
				s.opts.Progress(incumbentObj, it.node.bound, nodes, false)
			}
			if it.pruned {
				continue
			}
			switch it.status {
			case lp.StatusInfeasible:
				continue
			case lp.StatusUnbounded:
				return Solution{Status: StatusUnbounded, NodesExplored: nodes,
					Stats: s.stats(nodes, rounds, incumbents)}
			case lp.StatusIterLimit:
				// The relaxation's answer is unknown, not "infeasible":
				// drop the node but remember that the search is no longer
				// exhaustive and keep the subtree's bound alive for the
				// final gap computation.
				sawIterLimit = true
				if s.minimize {
					iterDropBound = math.Min(iterDropBound, it.node.bound)
				} else {
					iterDropBound = math.Max(iterDropBound, it.node.bound)
				}
				continue
			}
			sawFeasibleRelaxation = true
			if !s.better(it.objective, incumbentObj) {
				// Dominated by an incumbent committed earlier this round
				// (the worker already applied the round-start incumbent).
				// Its children, if any were pushed, will be pruned when
				// popped.
				continue
			}
			if it.branchVar < 0 {
				incumbentObj = it.objective
				incumbentValues = it.values
				incumbents = append(incumbents, IncumbentEvent{
					Nodes:     nodes,
					Objective: incumbentObj,
					Bound:     it.node.bound,
				})
				if s.opts.Progress != nil {
					s.opts.Progress(incumbentObj, it.node.bound, nodes, true)
				}
			}
		}
		s.storeIncumbent(incumbentObj)
		if aborted {
			hitLimit = true
			break
		}
	}

	// Best remaining bound: the better of the open-node bounds (if the
	// search stopped early) or the incumbent itself (if the tree was
	// exhausted), weakened by any subtree dropped on an LP iteration limit.
	bestBound := incumbentObj
	if s.pool.len() > 0 {
		bestBound = s.pool.bestBound()
	}
	if sawIterLimit {
		if s.minimize {
			bestBound = math.Min(bestBound, iterDropBound)
		} else {
			bestBound = math.Max(bestBound, iterDropBound)
		}
	}

	haveIncumbent := incumbentValues != nil || s.opts.WarmStart != nil
	switch {
	case !haveIncumbent && !sawFeasibleRelaxation && !hitLimit && !sawIterLimit:
		return Solution{Status: StatusInfeasible, NodesExplored: nodes,
			Stats: s.stats(nodes, rounds, incumbents)}
	case !haveIncumbent:
		return Solution{Status: StatusLimit, NodesExplored: nodes, Bound: bestBound,
			Stats: s.stats(nodes, rounds, incumbents)}
	}

	status := StatusOptimal
	if (hitLimit && s.pool.len() > 0) || sawIterLimit {
		// A drained tree with dropped subtrees is NOT a proof of
		// optimality: a better integer solution may live in a discarded
		// subtree.
		status = StatusFeasible
	}
	gap := math.Abs(incumbentObj-bestBound) / math.Max(1, math.Abs(incumbentObj))
	if status == StatusOptimal {
		gap = 0
		bestBound = incumbentObj
	}
	return Solution{
		Status:        status,
		Objective:     incumbentObj,
		Values:        incumbentValues,
		NodesExplored: nodes,
		Bound:         bestBound,
		Gap:           gap,
		Stats:         s.stats(nodes, rounds, incumbents),
	}
}

// stats assembles the Solution.Stats record from the search's telemetry
// counters (called at every exit path of run).
func (s *search) stats(nodes, rounds int, incumbents []IncumbentEvent) *Stats {
	return &Stats{
		Nodes:            nodes,
		Rounds:           rounds,
		Steals:           s.steals.Load(),
		LPIterations:     s.lpIters.Load(),
		Refactorisations: s.lpRefactors.Load(),
		WarmSolves:       s.lpWarm.Load(),
		ColdSolves:       s.lpCold.Load(),
		Incumbents:       incumbents,
	}
}

// solveBatch processes one round's items on up to s.workers goroutines.
// With one worker (or a one-item batch) it runs inline on the coordinator.
func (s *search) solveBatch(ctx context.Context, items []batchItem, roundBase uint64, poolLen0 int) {
	n := s.workers
	if n > len(items) {
		n = len(items)
	}
	deques := make([]*rankDeque, n)
	for w := range deques {
		deques[w] = &rankDeque{}
	}
	// Round-robin assignment interleaves the best-first order across
	// workers so every worker starts on a good node.
	for rank := range items {
		d := deques[rank%n]
		d.ranks = append(d.ranks, rank)
	}
	if n == 1 {
		s.runWorker(ctx, 0, items, deques, roundBase, poolLen0)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s.runWorker(ctx, w, items, deques, roundBase, poolLen0)
		}(w)
	}
	wg.Wait()
}

// runWorker drains its own deque front-to-back, then steals from the back
// of the other workers' deques until the round is exhausted or the context
// fires. Unclaimed items are left !done for the coordinator to return to
// the pool.
func (s *search) runWorker(ctx context.Context, w int, items []batchItem, deques []*rankDeque, roundBase uint64, poolLen0 int) {
	for {
		rank, ok := deques[w].popFront()
		if !ok {
			for off := 1; !ok && off < len(deques); off++ {
				rank, ok = deques[(w+off)%len(deques)].popBack()
			}
			if ok {
				s.steals.Add(1)
			}
		}
		if !ok {
			return
		}
		if ctx.Err() != nil || (!s.deadline.IsZero() && time.Now().After(s.deadline)) {
			return
		}
		s.processItem(w, &items[rank], rank, roundBase, poolLen0)
	}
}

// processItem solves one node's relaxation and pushes its children. Every
// input it consults — the node, the round-stable atomic incumbent, the
// rank-derived child IDs, the round-start pool length — is independent of
// worker identity and timing, so the item's outcome is too.
func (s *search) processItem(w int, it *batchItem, rank int, roundBase uint64, poolLen0 int) {
	it.done = true
	incumbent := s.loadIncumbent()
	if !s.better(it.node.bound, incumbent) {
		// The subtree cannot improve on the incumbent committed at the last
		// barrier: skip the LP entirely. (The sequential search solved such
		// nodes and pruned on the relaxation objective; pruning on the
		// parent bound is the same decision taken earlier.)
		it.pruned = true
		return
	}
	sol := s.relaxer(w).solve(it.node)
	it.status = sol.Status
	it.objective = sol.Objective
	s.lpIters.Add(int64(sol.Stats.Iterations))
	s.lpRefactors.Add(int64(sol.Stats.Refactorisations))
	if sol.Stats.Warm {
		s.lpWarm.Add(1)
	} else {
		s.lpCold.Add(1)
	}
	if sol.Status != lp.StatusOptimal {
		return
	}
	if !s.better(sol.Objective, incumbent) {
		// Dominated: no children. The barrier's incumbent is at least as
		// good as the round-start one, so the coordinator reaches the same
		// verdict.
		return
	}

	// Find the most fractional binary variable.
	branchVar := -1
	worstFrac := s.tol
	for _, v := range s.p.Binary {
		val := sol.Value(v)
		frac := math.Abs(val - math.Round(val))
		if frac > worstFrac {
			worstFrac = frac
			branchVar = v
		}
	}
	it.branchVar = branchVar
	if branchVar < 0 {
		// Integral: carry the candidate to the barrier for ordered
		// acceptance. sol.Values is freshly allocated per solve, so it is
		// safe to retain.
		it.values = sol.Values
		return
	}

	// Branch: fix the variable to 0 and to 1. Both children share this
	// node's optimal basis as their warm start. Beyond the retained-basis
	// cap the children are queued without one (they cold-start if ever
	// explored) so warm-start memory stays bounded; the cap test uses only
	// round-start state plus the rank, keeping the decision deterministic.
	childBasis := sol.Basis
	if poolLen0+2*rank >= warmBasisQueueCap {
		childBasis = nil
	}
	for d, fixVal := range []float64{0, 1} {
		child := &node{
			id:    roundBase + 2*uint64(rank) + uint64(d),
			fixed: make(map[int]float64, len(it.node.fixed)+1),
			bound: sol.Objective,
			basis: childBasis,
		}
		for k, v := range it.node.fixed {
			child.fixed[k] = v
		}
		child.fixed[branchVar] = fixVal
		s.pool.push(child)
	}
}
