// Package milp implements a branch-and-bound mixed-integer linear programming
// solver on top of the lp package. It supports binary integrality
// restrictions, which is all the MinR formulation (problem (1) of the paper)
// requires: the delta_i / delta_ij repair decisions are binary while the flow
// variables remain continuous.
//
// The solver explores a best-first tree of LP relaxations, branching on the
// most fractional binary variable, and supports node and time limits so that
// the OPT baseline can be run in "best incumbent" mode on instances where a
// proof of optimality would take too long (exactly the behaviour reported in
// Fig. 7(a) of the paper).
package milp

import (
	"container/heap"
	"context"
	"math"
	"time"

	"netrecovery/internal/lp"
)

// Status reports the outcome of a MILP solve.
type Status int

// Solve outcomes.
const (
	// StatusOptimal means the incumbent is proven optimal.
	StatusOptimal Status = iota + 1
	// StatusFeasible means an incumbent was found but the search hit a
	// node/time limit before proving optimality.
	StatusFeasible
	// StatusInfeasible means the problem has no feasible solution.
	StatusInfeasible
	// StatusLimit means the search hit a limit before finding any incumbent.
	StatusLimit
	// StatusUnbounded means the LP relaxation is unbounded.
	StatusUnbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusFeasible:
		return "feasible"
	case StatusInfeasible:
		return "infeasible"
	case StatusLimit:
		return "limit"
	case StatusUnbounded:
		return "unbounded"
	default:
		return "unknown"
	}
}

// Problem is a MILP: an lp.Problem plus the set of variables restricted to
// {0, 1}.
type Problem struct {
	LP     *lp.Problem
	Binary []int
}

// Options tune the branch-and-bound search.
type Options struct {
	// MaxNodes bounds the number of explored tree nodes (0 = 100000).
	MaxNodes int
	// TimeLimit bounds the wall-clock search time (0 = no limit).
	TimeLimit time.Duration
	// Tolerance for integrality and bound comparisons (0 = 1e-6).
	Tolerance float64
	// WarmStart, when non-nil, supplies a known feasible assignment of the
	// binary variables used to initialise the incumbent bound (e.g. "repair
	// everything" for MinR). Values must be 0 or 1 per binary variable in
	// the order of Problem.Binary.
	WarmStart []float64
	// WarmStartObjective is the objective value of the warm start.
	WarmStartObjective float64
	// Progress, when set, streams search progress: it is invoked whenever a
	// new incumbent is accepted (improved true) and every
	// progressInterval explored nodes (improved false), with the current
	// incumbent objective (±Inf while none exists), the best known bound and
	// the number of explored nodes. The callback runs on the solver
	// goroutine and must be cheap.
	Progress func(incumbent, bound float64, nodes int, improved bool)
}

// progressInterval is the node-count period of the non-incumbent Progress
// callbacks.
const progressInterval = 100

func (o Options) withDefaults() Options {
	if o.MaxNodes == 0 {
		o.MaxNodes = 100000
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-6
	}
	return o
}

// Solution is the result of a MILP solve.
type Solution struct {
	Status        Status
	Objective     float64
	Values        []float64
	NodesExplored int
	// Bound is the best proven bound on the optimum (lower bound for
	// minimisation, upper bound for maximisation). When Status is
	// StatusOptimal, Bound equals Objective up to tolerance.
	Bound float64
	// Gap is |Objective - Bound| / max(1, |Objective|), meaningful when an
	// incumbent exists.
	Gap float64
}

// node is a branch-and-bound tree node: a set of fixed binary variables.
type node struct {
	fixed map[int]float64
	bound float64 // parent LP bound (for best-first ordering)
}

type nodeQueue struct {
	items []*node
	min   bool
}

func (q nodeQueue) Len() int { return len(q.items) }
func (q nodeQueue) Less(i, j int) bool {
	if q.min {
		return q.items[i].bound < q.items[j].bound
	}
	return q.items[i].bound > q.items[j].bound
}
func (q nodeQueue) Swap(i, j int)       { q.items[i], q.items[j] = q.items[j], q.items[i] }
func (q *nodeQueue) Push(x interface{}) { q.items = append(q.items, x.(*node)) }
func (q *nodeQueue) Pop() interface{} {
	old := q.items
	n := len(old)
	item := old[n-1]
	q.items = old[:n-1]
	return item
}

// Solve runs branch and bound and returns the best solution found. A fired
// context is treated like a node/time limit: the search stops promptly and
// the best incumbent found so far (if any) is returned; the caller decides
// whether to surface ctx.Err().
func Solve(ctx context.Context, p Problem, opts Options) Solution {
	opts = opts.withDefaults()
	sense := senseOf(p.LP)
	minimize := sense == lp.Minimize
	tol := opts.Tolerance
	start := time.Now()

	better := func(a, b float64) bool {
		if minimize {
			return a < b-tol
		}
		return a > b+tol
	}

	incumbentObj := math.Inf(1)
	if !minimize {
		incumbentObj = math.Inf(-1)
	}
	var incumbentValues []float64
	if opts.WarmStart != nil {
		incumbentObj = opts.WarmStartObjective
	}

	queue := &nodeQueue{min: minimize}
	heap.Init(queue)
	rootBound := math.Inf(-1)
	if minimize {
		rootBound = math.Inf(-1)
	} else {
		rootBound = math.Inf(1)
	}
	heap.Push(queue, &node{fixed: map[int]float64{}, bound: rootBound})

	nodes := 0
	bestBound := rootBound
	sawFeasibleRelaxation := false
	hitLimit := false

	for queue.Len() > 0 {
		if ctx.Err() != nil || nodes >= opts.MaxNodes || (opts.TimeLimit > 0 && time.Since(start) > opts.TimeLimit) {
			hitLimit = true
			break
		}
		cur := heap.Pop(queue).(*node)
		nodes++
		if opts.Progress != nil && nodes%progressInterval == 0 {
			opts.Progress(incumbentObj, cur.bound, nodes, false)
		}

		relax := solveRelaxation(p, cur.fixed)
		switch relax.Status {
		case lp.StatusInfeasible:
			continue
		case lp.StatusUnbounded:
			return Solution{Status: StatusUnbounded, NodesExplored: nodes}
		case lp.StatusIterLimit:
			// Treat as unexplorable; prune conservatively.
			continue
		}
		sawFeasibleRelaxation = true

		// Prune by bound.
		if incumbentValues != nil || opts.WarmStart != nil {
			if !better(relax.Objective, incumbentObj) {
				continue
			}
		}

		// Find the most fractional binary variable.
		branchVar := -1
		worstFrac := tol
		for _, v := range p.Binary {
			val := relax.Value(v)
			frac := math.Abs(val - math.Round(val))
			if frac > worstFrac {
				worstFrac = frac
				branchVar = v
			}
		}
		if branchVar < 0 {
			// Integral solution: candidate incumbent.
			if (incumbentValues == nil && opts.WarmStart == nil) || better(relax.Objective, incumbentObj) {
				incumbentObj = relax.Objective
				incumbentValues = append([]float64(nil), relax.Values...)
				if opts.Progress != nil {
					opts.Progress(incumbentObj, cur.bound, nodes, true)
				}
			}
			continue
		}

		// Branch: fix the variable to 0 and to 1.
		for _, fixVal := range []float64{0, 1} {
			child := &node{fixed: make(map[int]float64, len(cur.fixed)+1), bound: relax.Objective}
			for k, v := range cur.fixed {
				child.fixed[k] = v
			}
			child.fixed[branchVar] = fixVal
			heap.Push(queue, child)
		}
	}

	// Best remaining bound: the better of the open-node bounds (if the search
	// stopped early) or the incumbent itself (if the tree was exhausted).
	if queue.Len() > 0 {
		bestBound = queue.items[0].bound
		for _, n := range queue.items {
			if minimize && n.bound < bestBound {
				bestBound = n.bound
			}
			if !minimize && n.bound > bestBound {
				bestBound = n.bound
			}
		}
	} else {
		bestBound = incumbentObj
	}

	haveIncumbent := incumbentValues != nil || opts.WarmStart != nil
	switch {
	case !haveIncumbent && !sawFeasibleRelaxation && !hitLimit:
		return Solution{Status: StatusInfeasible, NodesExplored: nodes}
	case !haveIncumbent:
		return Solution{Status: StatusLimit, NodesExplored: nodes, Bound: bestBound}
	}

	status := StatusOptimal
	if hitLimit && queue.Len() > 0 {
		status = StatusFeasible
	}
	gap := math.Abs(incumbentObj-bestBound) / math.Max(1, math.Abs(incumbentObj))
	if status == StatusOptimal {
		gap = 0
		bestBound = incumbentObj
	}
	return Solution{
		Status:        status,
		Objective:     incumbentObj,
		Values:        incumbentValues,
		NodesExplored: nodes,
		Bound:         bestBound,
		Gap:           gap,
	}
}

// solveRelaxation solves the LP relaxation with the given binary fixings.
// Fixings are imposed with temporary bounds on a clone of the problem.
func solveRelaxation(p Problem, fixed map[int]float64) lp.Solution {
	prob := cloneForRelaxation(p, fixed)
	return prob.Solve()
}

// cloneForRelaxation rebuilds the LP with binary variables bounded to [0,1]
// and fixed variables pinned via equality constraints.
func cloneForRelaxation(p Problem, fixed map[int]float64) *lp.Problem {
	clone := p.LP.CloneStructure()
	for _, v := range p.Binary {
		if clone.UpperBound(v) > 1 {
			_ = clone.SetUpperBound(v, 1)
		}
	}
	for v, val := range fixed {
		// Pin with an equality row; simpler than bound surgery and the row
		// count stays small because fixings grow one per tree level.
		_ = clone.AddConstraint([]lp.Term{{Var: v, Coef: 1}}, lp.Equal, val, "fix")
	}
	return clone
}

// senseOf exposes the optimisation sense of an lp.Problem via its public
// clone helper (the lp package does not export the sense directly).
func senseOf(p *lp.Problem) lp.Sense {
	return p.Sense()
}
