// Package milp implements a branch-and-bound mixed-integer linear programming
// solver on top of the lp package. It supports binary integrality
// restrictions, which is all the MinR formulation (problem (1) of the paper)
// requires: the delta_i / delta_ij repair decisions are binary while the flow
// variables remain continuous.
//
// The solver explores a best-first tree of LP relaxations, branching on the
// most fractional binary variable, and supports node and time limits so that
// the OPT baseline can be run in "best incumbent" mode on instances where a
// proof of optimality would take too long (exactly the behaviour reported in
// Fig. 7(a) of the paper).
//
// The search is parallel: Options.Workers goroutines solve LP relaxations
// concurrently over a lock-striped best-first node pool with work stealing,
// each holding its own warm-started lp.Solver clone. The search trace is
// deterministic — identical run to run and across worker counts — see the
// package comment in search.go for the construction.
package milp

import (
	"context"
	"time"

	"netrecovery/internal/lp"
)

// Status reports the outcome of a MILP solve.
type Status int

// Solve outcomes.
const (
	// StatusOptimal means the incumbent is proven optimal.
	StatusOptimal Status = iota + 1
	// StatusFeasible means an incumbent was found but the search hit a
	// node/time limit before proving optimality.
	StatusFeasible
	// StatusInfeasible means the problem has no feasible solution.
	StatusInfeasible
	// StatusLimit means the search hit a limit before finding any incumbent.
	StatusLimit
	// StatusUnbounded means the LP relaxation is unbounded.
	StatusUnbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusFeasible:
		return "feasible"
	case StatusInfeasible:
		return "infeasible"
	case StatusLimit:
		return "limit"
	case StatusUnbounded:
		return "unbounded"
	default:
		return "unknown"
	}
}

// Problem is a MILP: an lp.Problem plus the set of variables restricted to
// {0, 1}.
type Problem struct {
	LP     *lp.Problem
	Binary []int
}

// Options tune the branch-and-bound search.
type Options struct {
	// MaxNodes bounds the number of explored tree nodes (0 = 100000).
	MaxNodes int
	// TimeLimit bounds the wall-clock search time (0 = no limit).
	TimeLimit time.Duration
	// Tolerance for integrality and bound comparisons (0 = 1e-6).
	Tolerance float64
	// Workers is the number of goroutines solving LP relaxations
	// concurrently (0 = GOMAXPROCS, negative = 1). Each worker owns a
	// private clone of the problem and a warm-started lp.Solver, so
	// factorisations and work buffers stay thread-local. The search result
	// — plan, objective, bound, node count, incumbent sequence — is
	// deterministic for a fixed instance: identical run to run and across
	// Workers values, because nodes are explored in fixed-size best-first
	// rounds with (bound, node-ID)-ordered selection and incumbents are
	// accepted in node order at round barriers. Wall-clock limits
	// (TimeLimit, context deadlines) cut the search at a timing-dependent
	// point and are the one exception.
	Workers int
	// WarmStart, when non-nil, supplies a known feasible assignment of the
	// binary variables used to initialise the incumbent bound (e.g. "repair
	// everything" for MinR). Values must be 0 or 1 per binary variable in
	// the order of Problem.Binary.
	WarmStart []float64
	// WarmStartObjective is the objective value of the warm start.
	WarmStartObjective float64
	// Progress, when set, streams search progress: it is invoked whenever a
	// new incumbent is accepted (improved true) and every
	// progressInterval explored nodes (improved false), with the current
	// incumbent objective (±Inf while none exists), the best known bound and
	// the number of explored nodes. The callback runs on the coordinator
	// goroutine at round barriers and must be cheap.
	Progress func(incumbent, bound float64, nodes int, improved bool)
	// DenseLP forces the legacy dense tableau solver for every LP
	// relaxation (no warm starts). Testing fallback used to cross-check the
	// sparse revised simplex; production paths leave it false.
	DenseLP bool
	// lpMaxIterations overrides the pivot budget of every LP relaxation
	// (0 = solver default). Unexported: used by tests to exercise the
	// iteration-limited-relaxation path deterministically.
	lpMaxIterations int
}

// progressInterval is the node-count period of the non-incumbent Progress
// callbacks.
const progressInterval = 100

// warmBasisQueueCap bounds how many open nodes may carry a warm-start basis
// snapshot: each basis is O(rows) in size, so an unbounded best-first pool
// would otherwise retain unbounded warm-start memory on hard instances.
const warmBasisQueueCap = 8192

func (o Options) withDefaults() Options {
	if o.MaxNodes == 0 {
		o.MaxNodes = 100000
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-6
	}
	return o
}

// Solution is the result of a MILP solve.
type Solution struct {
	Status        Status
	Objective     float64
	Values        []float64
	NodesExplored int
	// Bound is the best proven bound on the optimum (lower bound for
	// minimisation, upper bound for maximisation). When Status is
	// StatusOptimal, Bound equals Objective up to tolerance.
	Bound float64
	// Gap is |Objective - Bound| / max(1, |Objective|), meaningful when an
	// incumbent exists.
	Gap float64
	// Stats carries the search-depth telemetry of the solve (see Stats).
	// It never affects the answer; deterministic fields stay deterministic
	// across worker counts, while Steals and the LP aggregates depend on
	// scheduling and are telemetry only.
	Stats *Stats
}

// Stats is the solver-depth record of one branch-and-bound run, surfaced
// so serving-time traces can show where a MILP solve spent its effort.
type Stats struct {
	// Nodes mirrors Solution.NodesExplored. Rounds counts the barrier
	// rounds of the deterministic batch schedule.
	Nodes  int `json:"nodes"`
	Rounds int `json:"rounds"`
	// Steals counts successful work-steals between worker deques. The
	// value depends on scheduling and is NOT deterministic.
	Steals int64 `json:"steals"`
	// LPIterations/Refactorisations/WarmSolves/ColdSolves aggregate the
	// per-node relaxation solves (scheduling-dependent only in so far as
	// pruning order changes which nodes are solved; deterministic for the
	// deterministic schedule).
	LPIterations     int64 `json:"lp_iterations"`
	Refactorisations int64 `json:"lp_refactorisations"`
	WarmSolves       int64 `json:"lp_warm_solves"`
	ColdSolves       int64 `json:"lp_cold_solves"`
	// Incumbents is the timeline of accepted incumbents in acceptance
	// order (deterministic: acceptance happens at round barriers).
	Incumbents []IncumbentEvent `json:"incumbents,omitempty"`
}

// IncumbentEvent is one point on the incumbent/bound timeline.
type IncumbentEvent struct {
	// Nodes is NodesExplored at the moment the incumbent was accepted;
	// Objective its value; Bound the best proven bound at that point.
	Nodes     int     `json:"nodes"`
	Objective float64 `json:"objective"`
	Bound     float64 `json:"bound"`
}

// node is a branch-and-bound tree node: a set of fixed binary variables plus
// the parent's optimal LP basis, which warm-starts the node's relaxation
// (the child differs from the parent by a single bound tightening, the
// textbook dual-simplex re-solve). The id is unique and deterministically
// derived from the node's position in the search trace (rank within its
// creation round); it breaks best-first ties, making the exploration order a
// total order.
type node struct {
	id    uint64
	fixed map[int]float64
	bound float64 // parent LP bound (for best-first ordering)
	basis *lp.Basis
}

// Solve runs branch and bound and returns the best solution found. A fired
// context is treated like a node/time limit: the search stops promptly (all
// workers exit at the next node boundary), and the best incumbent found so
// far (if any) is returned; the caller decides whether to surface ctx.Err().
func Solve(ctx context.Context, p Problem, opts Options) Solution {
	return newSearch(p, opts.withDefaults()).run(ctx)
}

// relaxer solves the per-node LP relaxations on ONE shared clone of the
// problem, imposing binary fixings as temporary equal bounds instead of
// extra equality rows. Because fixings never change the problem structure,
// every node's relaxation can warm-start from its parent's optimal basis
// (a single tightened bound away) and the underlying lp.Solver reuses its
// factorisation and work buffers across the whole tree. Each search worker
// holds its own relaxer; the lp solves run in Deterministic mode so a
// node's relaxation does not depend on the worker's solve history.
type relaxer struct {
	prob   *lp.Problem
	binary []int
	pos    map[int]int // variable index -> position in binary/baseLo/baseUp
	baseLo []float64   // relaxation bounds of the binary variables
	baseUp []float64
	solver *lp.Solver
	dense  bool
	lpIter int // LP pivot budget override (0 = solver default); set by tests
}

func newRelaxer(p Problem, opts Options) *relaxer {
	r := &relaxer{
		prob:   p.LP.CloneStructure(),
		binary: p.Binary,
		pos:    make(map[int]int, len(p.Binary)),
		baseLo: make([]float64, len(p.Binary)),
		baseUp: make([]float64, len(p.Binary)),
		solver: lp.NewSolver(),
		dense:  opts.DenseLP,
		lpIter: opts.lpMaxIterations,
	}
	for i, v := range p.Binary {
		up := r.prob.UpperBound(v)
		if up > 1 {
			up = 1
		}
		lo := r.prob.LowerBound(v)
		_ = r.prob.SetBounds(v, lo, up)
		r.baseLo[i], r.baseUp[i] = lo, up
		r.pos[v] = i
	}
	return r
}

// solve runs the node's LP relaxation: apply the fixings, solve (warm-started
// from the parent basis when available), restore the relaxation bounds. A
// fixing outside the variable's declared bounds makes the node infeasible
// outright — overwriting the bound would silently widen the model (a binary
// variable may carry a tighter bound, e.g. an upper bound of 0).
func (r *relaxer) solve(cur *node) lp.Solution {
	for v, val := range cur.fixed {
		i := r.pos[v]
		if val < r.baseLo[i] || val > r.baseUp[i] {
			return lp.Solution{Status: lp.StatusInfeasible}
		}
	}
	for v, val := range cur.fixed {
		_ = r.prob.SetBounds(v, val, val)
	}
	opts := lp.Options{Dense: r.dense, MaxIterations: r.lpIter, Deterministic: true}
	if !r.dense {
		opts.WarmStart = cur.basis
	}
	sol := r.solver.Solve(r.prob, opts)
	for i, v := range r.binary {
		if _, ok := cur.fixed[v]; ok {
			_ = r.prob.SetBounds(v, r.baseLo[i], r.baseUp[i])
		}
	}
	return sol
}

// senseOf exposes the optimisation sense of an lp.Problem via its public
// clone helper (the lp package does not export the sense directly).
func senseOf(p *lp.Problem) lp.Sense {
	return p.Sense()
}
