// Package milp implements a branch-and-bound mixed-integer linear programming
// solver on top of the lp package. It supports binary integrality
// restrictions, which is all the MinR formulation (problem (1) of the paper)
// requires: the delta_i / delta_ij repair decisions are binary while the flow
// variables remain continuous.
//
// The solver explores a best-first tree of LP relaxations, branching on the
// most fractional binary variable, and supports node and time limits so that
// the OPT baseline can be run in "best incumbent" mode on instances where a
// proof of optimality would take too long (exactly the behaviour reported in
// Fig. 7(a) of the paper).
package milp

import (
	"container/heap"
	"context"
	"math"
	"time"

	"netrecovery/internal/lp"
)

// Status reports the outcome of a MILP solve.
type Status int

// Solve outcomes.
const (
	// StatusOptimal means the incumbent is proven optimal.
	StatusOptimal Status = iota + 1
	// StatusFeasible means an incumbent was found but the search hit a
	// node/time limit before proving optimality.
	StatusFeasible
	// StatusInfeasible means the problem has no feasible solution.
	StatusInfeasible
	// StatusLimit means the search hit a limit before finding any incumbent.
	StatusLimit
	// StatusUnbounded means the LP relaxation is unbounded.
	StatusUnbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusFeasible:
		return "feasible"
	case StatusInfeasible:
		return "infeasible"
	case StatusLimit:
		return "limit"
	case StatusUnbounded:
		return "unbounded"
	default:
		return "unknown"
	}
}

// Problem is a MILP: an lp.Problem plus the set of variables restricted to
// {0, 1}.
type Problem struct {
	LP     *lp.Problem
	Binary []int
}

// Options tune the branch-and-bound search.
type Options struct {
	// MaxNodes bounds the number of explored tree nodes (0 = 100000).
	MaxNodes int
	// TimeLimit bounds the wall-clock search time (0 = no limit).
	TimeLimit time.Duration
	// Tolerance for integrality and bound comparisons (0 = 1e-6).
	Tolerance float64
	// WarmStart, when non-nil, supplies a known feasible assignment of the
	// binary variables used to initialise the incumbent bound (e.g. "repair
	// everything" for MinR). Values must be 0 or 1 per binary variable in
	// the order of Problem.Binary.
	WarmStart []float64
	// WarmStartObjective is the objective value of the warm start.
	WarmStartObjective float64
	// Progress, when set, streams search progress: it is invoked whenever a
	// new incumbent is accepted (improved true) and every
	// progressInterval explored nodes (improved false), with the current
	// incumbent objective (±Inf while none exists), the best known bound and
	// the number of explored nodes. The callback runs on the solver
	// goroutine and must be cheap.
	Progress func(incumbent, bound float64, nodes int, improved bool)
	// DenseLP forces the legacy dense tableau solver for every LP
	// relaxation (no warm starts). Testing fallback used to cross-check the
	// sparse revised simplex; production paths leave it false.
	DenseLP bool
	// lpMaxIterations overrides the pivot budget of every LP relaxation
	// (0 = solver default). Unexported: used by tests to exercise the
	// iteration-limited-relaxation path deterministically.
	lpMaxIterations int
}

// progressInterval is the node-count period of the non-incumbent Progress
// callbacks.
const progressInterval = 100

// warmBasisQueueCap bounds how many open nodes may carry a warm-start basis
// snapshot: each basis is O(rows) in size, so an unbounded best-first heap
// would otherwise retain unbounded warm-start memory on hard instances.
const warmBasisQueueCap = 8192

func (o Options) withDefaults() Options {
	if o.MaxNodes == 0 {
		o.MaxNodes = 100000
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-6
	}
	return o
}

// Solution is the result of a MILP solve.
type Solution struct {
	Status        Status
	Objective     float64
	Values        []float64
	NodesExplored int
	// Bound is the best proven bound on the optimum (lower bound for
	// minimisation, upper bound for maximisation). When Status is
	// StatusOptimal, Bound equals Objective up to tolerance.
	Bound float64
	// Gap is |Objective - Bound| / max(1, |Objective|), meaningful when an
	// incumbent exists.
	Gap float64
}

// node is a branch-and-bound tree node: a set of fixed binary variables plus
// the parent's optimal LP basis, which warm-starts the node's relaxation
// (the child differs from the parent by a single bound tightening, the
// textbook dual-simplex re-solve).
type node struct {
	fixed map[int]float64
	bound float64 // parent LP bound (for best-first ordering)
	basis *lp.Basis
}

type nodeQueue struct {
	items []*node
	min   bool
}

func (q nodeQueue) Len() int { return len(q.items) }
func (q nodeQueue) Less(i, j int) bool {
	if q.min {
		return q.items[i].bound < q.items[j].bound
	}
	return q.items[i].bound > q.items[j].bound
}
func (q nodeQueue) Swap(i, j int)       { q.items[i], q.items[j] = q.items[j], q.items[i] }
func (q *nodeQueue) Push(x interface{}) { q.items = append(q.items, x.(*node)) }
func (q *nodeQueue) Pop() interface{} {
	old := q.items
	n := len(old)
	item := old[n-1]
	q.items = old[:n-1]
	return item
}

// Solve runs branch and bound and returns the best solution found. A fired
// context is treated like a node/time limit: the search stops promptly and
// the best incumbent found so far (if any) is returned; the caller decides
// whether to surface ctx.Err().
func Solve(ctx context.Context, p Problem, opts Options) Solution {
	opts = opts.withDefaults()
	sense := senseOf(p.LP)
	minimize := sense == lp.Minimize
	tol := opts.Tolerance
	start := time.Now()

	better := func(a, b float64) bool {
		if minimize {
			return a < b-tol
		}
		return a > b+tol
	}

	incumbentObj := math.Inf(1)
	if !minimize {
		incumbentObj = math.Inf(-1)
	}
	var incumbentValues []float64
	if opts.WarmStart != nil {
		incumbentObj = opts.WarmStartObjective
	}

	queue := &nodeQueue{min: minimize}
	heap.Init(queue)
	rootBound := math.Inf(-1)
	if !minimize {
		rootBound = math.Inf(1)
	}
	heap.Push(queue, &node{fixed: map[int]float64{}, bound: rootBound})

	relaxer := newRelaxer(p, opts)

	nodes := 0
	bestBound := rootBound
	sawFeasibleRelaxation := false
	sawIterLimit := false
	// iterDropBound tracks the best bound among subtrees dropped because
	// their relaxation hit the LP iteration limit: the parent's objective is
	// still a valid bound for the discarded subtree, and folding it into the
	// final bound keeps Bound/Gap honest about the unexplored work.
	iterDropBound := math.Inf(1)
	if !minimize {
		iterDropBound = math.Inf(-1)
	}
	hitLimit := false

	for queue.Len() > 0 {
		if ctx.Err() != nil || nodes >= opts.MaxNodes || (opts.TimeLimit > 0 && time.Since(start) > opts.TimeLimit) {
			hitLimit = true
			break
		}
		cur := heap.Pop(queue).(*node)
		nodes++
		if opts.Progress != nil && nodes%progressInterval == 0 {
			opts.Progress(incumbentObj, cur.bound, nodes, false)
		}

		relax := relaxer.solve(cur)
		switch relax.Status {
		case lp.StatusInfeasible:
			continue
		case lp.StatusUnbounded:
			return Solution{Status: StatusUnbounded, NodesExplored: nodes}
		case lp.StatusIterLimit:
			// The relaxation's answer is unknown, not "infeasible": drop the
			// node but remember that the search is no longer exhaustive and
			// keep the subtree's bound alive for the final gap computation.
			sawIterLimit = true
			if minimize {
				iterDropBound = math.Min(iterDropBound, cur.bound)
			} else {
				iterDropBound = math.Max(iterDropBound, cur.bound)
			}
			continue
		}
		sawFeasibleRelaxation = true

		// Prune by bound.
		if incumbentValues != nil || opts.WarmStart != nil {
			if !better(relax.Objective, incumbentObj) {
				continue
			}
		}

		// Find the most fractional binary variable.
		branchVar := -1
		worstFrac := tol
		for _, v := range p.Binary {
			val := relax.Value(v)
			frac := math.Abs(val - math.Round(val))
			if frac > worstFrac {
				worstFrac = frac
				branchVar = v
			}
		}
		if branchVar < 0 {
			// Integral solution: candidate incumbent.
			if (incumbentValues == nil && opts.WarmStart == nil) || better(relax.Objective, incumbentObj) {
				incumbentObj = relax.Objective
				incumbentValues = append([]float64(nil), relax.Values...)
				if opts.Progress != nil {
					opts.Progress(incumbentObj, cur.bound, nodes, true)
				}
			}
			continue
		}

		// Branch: fix the variable to 0 and to 1. Both children share this
		// node's optimal basis as their warm start. On very deep searches the
		// open-node heap can hold tens of thousands of nodes; beyond a cap
		// the children are queued without a basis (they cold-start if ever
		// explored) so the retained warm-start memory stays bounded.
		childBasis := relax.Basis
		if queue.Len() >= warmBasisQueueCap {
			childBasis = nil
		}
		for _, fixVal := range []float64{0, 1} {
			child := &node{fixed: make(map[int]float64, len(cur.fixed)+1), bound: relax.Objective, basis: childBasis}
			for k, v := range cur.fixed {
				child.fixed[k] = v
			}
			child.fixed[branchVar] = fixVal
			heap.Push(queue, child)
		}
	}

	// Best remaining bound: the better of the open-node bounds (if the search
	// stopped early) or the incumbent itself (if the tree was exhausted),
	// weakened by any subtree dropped on an LP iteration limit.
	if queue.Len() > 0 {
		bestBound = queue.items[0].bound
		for _, n := range queue.items {
			if minimize && n.bound < bestBound {
				bestBound = n.bound
			}
			if !minimize && n.bound > bestBound {
				bestBound = n.bound
			}
		}
	} else {
		bestBound = incumbentObj
	}
	if sawIterLimit {
		if minimize {
			bestBound = math.Min(bestBound, iterDropBound)
		} else {
			bestBound = math.Max(bestBound, iterDropBound)
		}
	}

	haveIncumbent := incumbentValues != nil || opts.WarmStart != nil
	switch {
	case !haveIncumbent && !sawFeasibleRelaxation && !hitLimit && !sawIterLimit:
		return Solution{Status: StatusInfeasible, NodesExplored: nodes}
	case !haveIncumbent:
		return Solution{Status: StatusLimit, NodesExplored: nodes, Bound: bestBound}
	}

	status := StatusOptimal
	if (hitLimit && queue.Len() > 0) || sawIterLimit {
		// A drained tree with dropped subtrees is NOT a proof of optimality:
		// a better integer solution may live in a discarded subtree.
		status = StatusFeasible
	}
	gap := math.Abs(incumbentObj-bestBound) / math.Max(1, math.Abs(incumbentObj))
	if status == StatusOptimal {
		gap = 0
		bestBound = incumbentObj
	}
	return Solution{
		Status:        status,
		Objective:     incumbentObj,
		Values:        incumbentValues,
		NodesExplored: nodes,
		Bound:         bestBound,
		Gap:           gap,
	}
}

// relaxer solves the per-node LP relaxations on ONE shared clone of the
// problem, imposing binary fixings as temporary equal bounds instead of
// extra equality rows. Because fixings never change the problem structure,
// every node's relaxation can warm-start from its parent's optimal basis
// (a single tightened bound away) and the underlying lp.Solver reuses its
// factorisation and work buffers across the whole tree.
type relaxer struct {
	prob   *lp.Problem
	binary []int
	pos    map[int]int // variable index -> position in binary/baseLo/baseUp
	baseLo []float64   // relaxation bounds of the binary variables
	baseUp []float64
	solver *lp.Solver
	dense  bool
	lpIter int // LP pivot budget override (0 = solver default); set by tests
}

func newRelaxer(p Problem, opts Options) *relaxer {
	r := &relaxer{
		prob:   p.LP.CloneStructure(),
		binary: p.Binary,
		pos:    make(map[int]int, len(p.Binary)),
		baseLo: make([]float64, len(p.Binary)),
		baseUp: make([]float64, len(p.Binary)),
		solver: lp.NewSolver(),
		dense:  opts.DenseLP,
		lpIter: opts.lpMaxIterations,
	}
	for i, v := range p.Binary {
		up := r.prob.UpperBound(v)
		if up > 1 {
			up = 1
		}
		lo := r.prob.LowerBound(v)
		_ = r.prob.SetBounds(v, lo, up)
		r.baseLo[i], r.baseUp[i] = lo, up
		r.pos[v] = i
	}
	return r
}

// solve runs the node's LP relaxation: apply the fixings, solve (warm-started
// from the parent basis when available), restore the relaxation bounds. A
// fixing outside the variable's declared bounds makes the node infeasible
// outright — overwriting the bound would silently widen the model (a binary
// variable may carry a tighter bound, e.g. an upper bound of 0).
func (r *relaxer) solve(cur *node) lp.Solution {
	for v, val := range cur.fixed {
		i := r.pos[v]
		if val < r.baseLo[i] || val > r.baseUp[i] {
			return lp.Solution{Status: lp.StatusInfeasible}
		}
	}
	for v, val := range cur.fixed {
		_ = r.prob.SetBounds(v, val, val)
	}
	opts := lp.Options{Dense: r.dense, MaxIterations: r.lpIter}
	if !r.dense {
		opts.WarmStart = cur.basis
	}
	sol := r.solver.Solve(r.prob, opts)
	for i, v := range r.binary {
		if _, ok := cur.fixed[v]; ok {
			_ = r.prob.SetBounds(v, r.baseLo[i], r.baseUp[i])
		}
	}
	return sol
}

// senseOf exposes the optimisation sense of an lp.Problem via its public
// clone helper (the lp package does not export the sense directly).
func senseOf(p *lp.Problem) lp.Sense {
	return p.Sense()
}
