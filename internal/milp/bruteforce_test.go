package milp

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"netrecovery/internal/lp"
)

// TestBranchAndBoundMatchesBruteForceKnapsack cross-checks the MILP solver
// against exhaustive enumeration on random 0/1 knapsacks with up to 10
// items: for every instance the branch-and-bound objective must equal the
// best objective over all 2^n feasible assignments.
func TestBranchAndBoundMatchesBruteForceKnapsack(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		values := make([]float64, n)
		weights := make([]float64, n)
		for i := 0; i < n; i++ {
			values[i] = 1 + float64(rng.Intn(20))
			weights[i] = 1 + float64(rng.Intn(10))
		}
		budget := 1 + rng.Float64()*25

		prob := lp.New(lp.Maximize)
		binaries := make([]int, n)
		terms := make([]lp.Term, n)
		for i := 0; i < n; i++ {
			binaries[i] = prob.AddBoundedVariable(values[i], 1, "")
			terms[i] = lp.Term{Var: binaries[i], Coef: weights[i]}
		}
		if err := prob.AddConstraint(terms, lp.LessEq, budget, "w"); err != nil {
			return false
		}
		sol := Solve(context.Background(), Problem{LP: prob, Binary: binaries}, Options{MaxNodes: 5000})
		if sol.Status != StatusOptimal {
			return false
		}

		// Brute force.
		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			weight, value := 0.0, 0.0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					weight += weights[i]
					value += values[i]
				}
			}
			if weight <= budget && value > best {
				best = value
			}
		}
		return math.Abs(sol.Objective-best) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestBranchAndBoundMatchesBruteForceSetCover does the same cross-check for
// random minimisation (weighted set cover) instances, exercising the
// GreaterEq rows and the minimisation path of the solver.
func TestBranchAndBoundMatchesBruteForceSetCover(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numSets := 3 + rng.Intn(5)
		numElements := 2 + rng.Intn(4)
		costs := make([]float64, numSets)
		covers := make([][]bool, numSets)
		for i := range covers {
			costs[i] = 1 + float64(rng.Intn(9))
			covers[i] = make([]bool, numElements)
			for j := 0; j < numElements; j++ {
				covers[i][j] = rng.Float64() < 0.5
			}
		}
		// Guarantee feasibility: the last set covers everything.
		for j := 0; j < numElements; j++ {
			covers[numSets-1][j] = true
		}

		prob := lp.New(lp.Minimize)
		binaries := make([]int, numSets)
		for i := 0; i < numSets; i++ {
			binaries[i] = prob.AddBoundedVariable(costs[i], 1, "")
		}
		for j := 0; j < numElements; j++ {
			var terms []lp.Term
			for i := 0; i < numSets; i++ {
				if covers[i][j] {
					terms = append(terms, lp.Term{Var: binaries[i], Coef: 1})
				}
			}
			if err := prob.AddConstraint(terms, lp.GreaterEq, 1, ""); err != nil {
				return false
			}
		}
		sol := Solve(context.Background(), Problem{LP: prob, Binary: binaries}, Options{MaxNodes: 5000})
		if sol.Status != StatusOptimal {
			return false
		}

		best := math.Inf(1)
		for mask := 0; mask < 1<<numSets; mask++ {
			cost := 0.0
			covered := make([]bool, numElements)
			for i := 0; i < numSets; i++ {
				if mask&(1<<i) != 0 {
					cost += costs[i]
					for j := 0; j < numElements; j++ {
						if covers[i][j] {
							covered[j] = true
						}
					}
				}
			}
			feasible := true
			for _, c := range covered {
				if !c {
					feasible = false
					break
				}
			}
			if feasible && cost < best {
				best = cost
			}
		}
		return math.Abs(sol.Objective-best) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
