package milp

import (
	"container/heap"
	"math"
	"sync"
	"sync/atomic"
)

// poolStripes is the number of lock stripes of the open-node pool. It is a
// fixed constant — deliberately NOT derived from the worker count — because
// the stripe of a node is id%poolStripes and the batch selection merges the
// stripes in (bound, id) order: a worker-dependent stripe count would not
// change the selection order, but keeping every structural constant
// worker-independent is what makes the whole search trace identical across
// worker counts.
const poolStripes = 8

// nodePool is the shared open-node queue of the parallel search: a
// best-first priority queue striped over poolStripes independently locked
// heaps. Workers push child nodes concurrently during a round (pushes to
// different stripes do not contend); the coordinator pops the next batch at
// the round barrier by merging the stripe heads in (bound, id) order, which
// is a total order — node IDs are unique — so the batch composition is
// deterministic no matter in which interleaving the children were pushed.
type nodePool struct {
	min  bool
	size atomic.Int64
	str  [poolStripes]poolStripe
}

type poolStripe struct {
	mu sync.Mutex
	h  nodeHeap
}

func newNodePool(min bool) *nodePool {
	p := &nodePool{min: min}
	for i := range p.str {
		p.str[i].h.min = min
	}
	return p
}

// push adds a node to its stripe. Safe for concurrent use.
func (p *nodePool) push(n *node) {
	st := &p.str[n.id%poolStripes]
	st.mu.Lock()
	heap.Push(&st.h, n)
	st.mu.Unlock()
	p.size.Add(1)
}

// len returns the number of open nodes.
func (p *nodePool) len() int { return int(p.size.Load()) }

// popBatch removes the k globally best nodes — (bound, id) order across all
// stripes — and appends them to dst as fresh batch items. Only the
// coordinator calls it, at a round barrier, so it may hold every stripe lock
// at once.
func (p *nodePool) popBatch(dst []batchItem, k int) []batchItem {
	for i := range p.str {
		p.str[i].mu.Lock()
	}
	for len(dst) < k {
		best := -1
		for i := range p.str {
			h := &p.str[i].h
			if len(h.items) == 0 {
				continue
			}
			if best < 0 || h.items[0].before(p.str[best].h.items[0], p.min) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		n := heap.Pop(&p.str[best].h).(*node)
		dst = append(dst, batchItem{node: n, branchVar: -1})
	}
	for i := range p.str {
		p.str[i].mu.Unlock()
	}
	p.size.Add(int64(-len(dst)))
	return dst
}

// bestBound returns the best open-node bound (the minimum for minimisation,
// the maximum for maximisation). The heaps order primarily by bound, so the
// stripe heads suffice. Returns ±Inf when the pool is empty.
func (p *nodePool) bestBound() float64 {
	best := math.Inf(1)
	if !p.min {
		best = math.Inf(-1)
	}
	for i := range p.str {
		st := &p.str[i]
		st.mu.Lock()
		if len(st.h.items) > 0 {
			b := st.h.items[0].bound
			if p.min {
				best = math.Min(best, b)
			} else {
				best = math.Max(best, b)
			}
		}
		st.mu.Unlock()
	}
	return best
}

// before reports whether n precedes m in best-first order: better bound
// first, smaller node ID on ties. Node IDs are unique, so this is a strict
// total order — the deterministic tie-break of the parallel search.
func (n *node) before(m *node, min bool) bool {
	if n.bound != m.bound {
		if min {
			return n.bound < m.bound
		}
		return n.bound > m.bound
	}
	return n.id < m.id
}

// nodeHeap is one stripe's binary heap in the order defined by node.before.
type nodeHeap struct {
	items []*node
	min   bool
}

func (h nodeHeap) Len() int            { return len(h.items) }
func (h nodeHeap) Less(i, j int) bool  { return h.items[i].before(h.items[j], h.min) }
func (h nodeHeap) Swap(i, j int)       { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *nodeHeap) Push(x interface{}) { h.items = append(h.items, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	item := old[n-1]
	old[n-1] = nil
	h.items = old[:n-1]
	return item
}

// rankDeque is one worker's share of a round's batch: the ranks it owns, in
// best-first order. The owner pops from the front; an idle worker steals
// from the back, taking the victim's worst-ranked (deepest-queued) work
// first so the owner keeps the best-first prefix it was assigned. Stealing
// only changes WHICH worker solves a rank, never the round's result set —
// results are committed in rank order at the barrier — so the steal schedule
// is free to be timing-dependent while the search stays deterministic.
type rankDeque struct {
	mu    sync.Mutex
	ranks []int
}

func (d *rankDeque) popFront() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.ranks) == 0 {
		return 0, false
	}
	r := d.ranks[0]
	d.ranks = d.ranks[1:]
	return r, true
}

func (d *rankDeque) popBack() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.ranks) == 0 {
		return 0, false
	}
	r := d.ranks[len(d.ranks)-1]
	d.ranks = d.ranks[:len(d.ranks)-1]
	return r, true
}
