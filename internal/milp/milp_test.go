package milp

import (
	"context"
	"math"
	"testing"
	"time"

	"netrecovery/internal/lp"
)

func TestKnapsack(t *testing.T) {
	// 0/1 knapsack: values 60, 100, 120; weights 10, 20, 30; budget 50.
	// Optimum = 220 (items 2 and 3).
	prob := lp.New(lp.Maximize)
	x1 := prob.AddBoundedVariable(60, 1, "x1")
	x2 := prob.AddBoundedVariable(100, 1, "x2")
	x3 := prob.AddBoundedVariable(120, 1, "x3")
	if err := prob.AddConstraint([]lp.Term{{Var: x1, Coef: 10}, {Var: x2, Coef: 20}, {Var: x3, Coef: 30}}, lp.LessEq, 50, "w"); err != nil {
		t.Fatal(err)
	}
	sol := Solve(context.Background(), Problem{LP: prob, Binary: []int{x1, x2, x3}}, Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-220) > 1e-6 {
		t.Errorf("objective = %f, want 220", sol.Objective)
	}
	if math.Abs(sol.Values[x1]) > 1e-6 || math.Abs(sol.Values[x2]-1) > 1e-6 || math.Abs(sol.Values[x3]-1) > 1e-6 {
		t.Errorf("values = %v", sol.Values)
	}
	if sol.Gap != 0 {
		t.Errorf("gap = %f, want 0", sol.Gap)
	}
}

func TestSetCoverMinimization(t *testing.T) {
	// Cover elements {1,2,3} with sets A={1,2} cost 3, B={2,3} cost 3,
	// C={1,2,3} cost 5. Optimum: C alone (5) or A+B (6) -> 5.
	prob := lp.New(lp.Minimize)
	a := prob.AddBoundedVariable(3, 1, "A")
	b := prob.AddBoundedVariable(3, 1, "B")
	c := prob.AddBoundedVariable(5, 1, "C")
	cover := func(sets ...int) []lp.Term {
		terms := make([]lp.Term, len(sets))
		for i, s := range sets {
			terms[i] = lp.Term{Var: s, Coef: 1}
		}
		return terms
	}
	mustAdd(t, prob, cover(a, c), lp.GreaterEq, 1)    // element 1
	mustAdd(t, prob, cover(a, b, c), lp.GreaterEq, 1) // element 2
	mustAdd(t, prob, cover(b, c), lp.GreaterEq, 1)    // element 3
	sol := Solve(context.Background(), Problem{LP: prob, Binary: []int{a, b, c}}, Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-5) > 1e-6 {
		t.Errorf("objective = %f, want 5", sol.Objective)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// max 5y + x  st  x <= 10, x <= 4 + 6y, y binary.
	// y=1: x=10 -> 15. y=0: x<=4 -> 4. Optimum 15.
	prob := lp.New(lp.Maximize)
	x := prob.AddVariable(1, "x")
	y := prob.AddBoundedVariable(5, 1, "y")
	mustAdd(t, prob, []lp.Term{{Var: x, Coef: 1}}, lp.LessEq, 10)
	mustAdd(t, prob, []lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: -6}}, lp.LessEq, 4)
	sol := Solve(context.Background(), Problem{LP: prob, Binary: []int{y}}, Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-15) > 1e-6 {
		t.Errorf("objective = %f, want 15", sol.Objective)
	}
}

func TestInfeasibleMILP(t *testing.T) {
	prob := lp.New(lp.Minimize)
	x := prob.AddBoundedVariable(1, 1, "x")
	mustAdd(t, prob, []lp.Term{{Var: x, Coef: 1}}, lp.GreaterEq, 2)
	sol := Solve(context.Background(), Problem{LP: prob, Binary: []int{x}}, Options{})
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestNodeLimitReturnsIncumbentOrLimit(t *testing.T) {
	// A small problem but with MaxNodes=1 the search cannot finish unless
	// the relaxation is already integral.
	prob := lp.New(lp.Maximize)
	x1 := prob.AddBoundedVariable(3, 1, "x1")
	x2 := prob.AddBoundedVariable(2, 1, "x2")
	x3 := prob.AddBoundedVariable(4, 1, "x3")
	mustAdd(t, prob, []lp.Term{{Var: x1, Coef: 2}, {Var: x2, Coef: 3}, {Var: x3, Coef: 5}}, lp.LessEq, 7, "w")
	sol := Solve(context.Background(), Problem{LP: prob, Binary: []int{x1, x2, x3}}, Options{MaxNodes: 1})
	if sol.Status != StatusFeasible && sol.Status != StatusLimit && sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.NodesExplored > 1 {
		t.Errorf("explored %d nodes, want <= 1", sol.NodesExplored)
	}
}

func TestWarmStartPrunes(t *testing.T) {
	// Knapsack with a warm start equal to the optimum: solver should still
	// confirm optimality and report the warm-start objective.
	prob := lp.New(lp.Maximize)
	x1 := prob.AddBoundedVariable(60, 1, "x1")
	x2 := prob.AddBoundedVariable(100, 1, "x2")
	mustAdd(t, prob, []lp.Term{{Var: x1, Coef: 10}, {Var: x2, Coef: 20}}, lp.LessEq, 20, "w")
	sol := Solve(context.Background(), Problem{LP: prob, Binary: []int{x1, x2}}, Options{
		WarmStart:          []float64{0, 1},
		WarmStartObjective: 100,
	})
	if sol.Status != StatusOptimal && sol.Status != StatusFeasible {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.Objective < 100-1e-6 {
		t.Errorf("objective = %f, want >= 100", sol.Objective)
	}
}

func TestTimeLimit(t *testing.T) {
	// A 12-variable knapsack with an absurdly small time limit must stop
	// quickly and report a limit-style status.
	prob := lp.New(lp.Maximize)
	var binaries []int
	terms := make([]lp.Term, 0, 12)
	for i := 0; i < 12; i++ {
		v := prob.AddBoundedVariable(float64(7+i%5), 1, "")
		binaries = append(binaries, v)
		terms = append(terms, lp.Term{Var: v, Coef: float64(3 + i%4)})
	}
	mustAdd(t, prob, terms, lp.LessEq, 11, "w")
	start := time.Now()
	sol := Solve(context.Background(), Problem{LP: prob, Binary: binaries}, Options{TimeLimit: time.Nanosecond})
	if time.Since(start) > 5*time.Second {
		t.Error("time limit not honoured")
	}
	if sol.Status == StatusOptimal && sol.NodesExplored > 2 {
		t.Errorf("unexpected full solve under nanosecond limit: %+v", sol)
	}
}

func TestStatusStrings(t *testing.T) {
	want := map[Status]string{
		StatusOptimal:    "optimal",
		StatusFeasible:   "feasible",
		StatusInfeasible: "infeasible",
		StatusLimit:      "limit",
		StatusUnbounded:  "unbounded",
		Status(42):       "unknown",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), str)
		}
	}
}

func TestPureLPPassthrough(t *testing.T) {
	// No binary variables: the MILP solver should return the LP optimum.
	prob := lp.New(lp.Minimize)
	x := prob.AddVariable(2, "x")
	mustAdd(t, prob, []lp.Term{{Var: x, Coef: 1}}, lp.GreaterEq, 4)
	sol := Solve(context.Background(), Problem{LP: prob}, Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-8) > 1e-6 {
		t.Errorf("objective = %f, want 8", sol.Objective)
	}
}

func mustAdd(t *testing.T, p *lp.Problem, terms []lp.Term, op lp.ConstraintOp, rhs float64, name ...string) {
	t.Helper()
	n := ""
	if len(name) > 0 {
		n = name[0]
	}
	if err := p.AddConstraint(terms, op, rhs, n); err != nil {
		t.Fatal(err)
	}
}

// TestFixingOutsideDeclaredBoundsPrunesChild pins the bound-fixing guard: a
// binary variable may carry a tighter declared bound (here an upper bound of
// 0.5), and the val=1 branch must be pruned as infeasible instead of
// silently widening the bound to [1,1].
func TestFixingOutsideDeclaredBoundsPrunesChild(t *testing.T) {
	prob := lp.New(lp.Maximize)
	x := prob.AddBoundedVariable(1, 0.5, "x")
	y := prob.AddVariable(0, "y")
	if err := prob.AddConstraint([]lp.Term{{Var: y, Coef: 1}}, lp.LessEq, 1, ""); err != nil {
		t.Fatal(err)
	}
	sol := Solve(context.Background(), Problem{LP: prob, Binary: []int{x}}, Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	// The only integral value inside [0, 0.5] is 0.
	if sol.Objective > 1e-9 || sol.Values[x] > 1e-9 {
		t.Errorf("objective = %f x = %f, want 0 (x=1 violates its declared bound)",
			sol.Objective, sol.Values[x])
	}
}

// TestIterationLimitedRelaxationNotClaimedOptimal pins the exhaustiveness
// accounting: when a subtree is dropped because its LP relaxation hit the
// pivot budget, the search must not report the incumbent as proven optimal
// with a zero gap.
func TestIterationLimitedRelaxationNotClaimedOptimal(t *testing.T) {
	prob := lp.New(lp.Minimize)
	x := prob.AddBoundedVariable(1, 1, "x")
	y := prob.AddBoundedVariable(1, 1, "y")
	if err := prob.AddConstraint([]lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, lp.GreaterEq, 1, ""); err != nil {
		t.Fatal(err)
	}
	opts := Options{
		// One pivot is never enough for the phase-1 start, so every
		// relaxation is dropped on StatusIterLimit.
		lpMaxIterations:    1,
		WarmStart:          []float64{1, 1},
		WarmStartObjective: 2,
	}
	sol := Solve(context.Background(), Problem{LP: prob, Binary: []int{x, y}}, opts)
	if sol.Status == StatusOptimal {
		t.Fatalf("claimed optimality although the root subtree was dropped on an iteration limit: %+v", sol)
	}
	if sol.Status == StatusInfeasible {
		t.Fatalf("iteration limit conflated with infeasibility: %+v", sol)
	}
	if sol.Gap == 0 {
		t.Errorf("gap = 0 despite an unexplored subtree: %+v", sol)
	}
}
