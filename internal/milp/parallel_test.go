package milp

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"netrecovery/internal/lp"
)

// randomKnapsack builds a seeded 0/1 knapsack MILP with n items. The
// instances are degenerate-prone on purpose (small integer coefficients
// produce many objective ties), which is exactly where a timing-dependent
// search would betray itself.
func randomKnapsack(seed int64, n int) Problem {
	rng := rand.New(rand.NewSource(seed))
	prob := lp.New(lp.Maximize)
	binaries := make([]int, n)
	terms := make([]lp.Term, 0, n)
	budget := 0.0
	for i := 0; i < n; i++ {
		v := prob.AddBoundedVariable(float64(1+rng.Intn(9)), 1, "")
		binaries[i] = v
		w := float64(1 + rng.Intn(7))
		terms = append(terms, lp.Term{Var: v, Coef: w})
		budget += w
	}
	if err := prob.AddConstraint(terms, lp.LessEq, math.Floor(budget*0.4), "w"); err != nil {
		panic(err)
	}
	return Problem{LP: prob, Binary: binaries}
}

// solutionFingerprint reduces a Solution to its comparable essence.
type solutionFingerprint struct {
	Status    Status
	Objective float64
	Values    []float64
	Nodes     int
	Bound     float64
}

func fingerprint(s Solution) solutionFingerprint {
	return solutionFingerprint{s.Status, s.Objective, s.Values, s.NodesExplored, s.Bound}
}

// TestParallelMatchesSequential pins the core determinism guarantee of the
// parallel search: the FULL solve trace result — status, objective, the
// individual variable values, the explored-node count and the proven bound —
// is identical across worker counts, because the search trace is
// worker-count independent by construction.
func TestParallelMatchesSequential(t *testing.T) {
	ctx := context.Background()
	for seed := int64(1); seed <= 8; seed++ {
		p := randomKnapsack(seed, 14)
		ref := Solve(ctx, p, Options{Workers: 1})
		if ref.Status != StatusOptimal {
			t.Fatalf("seed %d: sequential status = %v", seed, ref.Status)
		}
		for _, workers := range []int{2, 4} {
			got := Solve(ctx, p, Options{Workers: workers})
			if !reflect.DeepEqual(fingerprint(got), fingerprint(ref)) {
				t.Errorf("seed %d workers %d: solution diverged\n got %+v\nwant %+v",
					seed, workers, fingerprint(got), fingerprint(ref))
			}
		}
	}
}

// TestParallelDeterministicAcrossRepeats re-solves the same instance five
// times at four workers: goroutine interleavings and steal schedules differ
// per run, the result must not.
func TestParallelDeterministicAcrossRepeats(t *testing.T) {
	ctx := context.Background()
	p := randomKnapsack(42, 16)
	ref := Solve(ctx, p, Options{Workers: 4})
	for rep := 1; rep < 5; rep++ {
		got := Solve(ctx, p, Options{Workers: 4})
		if !reflect.DeepEqual(fingerprint(got), fingerprint(ref)) {
			t.Fatalf("repeat %d: solution diverged\n got %+v\nwant %+v",
				rep, fingerprint(got), fingerprint(ref))
		}
	}
}

// TestParallelNodeLimitDeterministic checks that a node-limited (as opposed
// to wall-clock-limited) search is still deterministic across worker counts:
// the node budget is spent at round granularity on the same batches.
func TestParallelNodeLimitDeterministic(t *testing.T) {
	ctx := context.Background()
	p := randomKnapsack(7, 18)
	ref := Solve(ctx, p, Options{Workers: 1, MaxNodes: 90})
	for _, workers := range []int{2, 4} {
		got := Solve(ctx, p, Options{Workers: workers, MaxNodes: 90})
		if !reflect.DeepEqual(fingerprint(got), fingerprint(ref)) {
			t.Errorf("workers %d: limited solution diverged\n got %+v\nwant %+v",
				workers, fingerprint(got), fingerprint(ref))
		}
	}
}

// TestParallelWarmStartAndDense covers the remaining option axes under
// parallelism: an ISP-style warm start and the dense LP oracle must both
// produce worker-count-independent results.
func TestParallelWarmStartAndDense(t *testing.T) {
	ctx := context.Background()
	p := randomKnapsack(11, 12)
	warm := make([]float64, len(p.Binary)) // all-zero is feasible for a knapsack
	for _, opts := range []Options{
		{WarmStart: warm, WarmStartObjective: 0},
		{DenseLP: true},
	} {
		seq, par := opts, opts
		seq.Workers, par.Workers = 1, 4
		ref := Solve(ctx, p, seq)
		got := Solve(ctx, p, par)
		if !reflect.DeepEqual(fingerprint(got), fingerprint(ref)) {
			t.Errorf("opts %+v: solution diverged\n got %+v\nwant %+v",
				opts, fingerprint(got), fingerprint(ref))
		}
	}
}

// TestParallelCancellation proves all workers exit promptly on context
// cancel: the solve must return well before the search budget would allow,
// and report a limit-style status carrying whatever incumbent existed.
func TestParallelCancellation(t *testing.T) {
	p := randomKnapsack(3, 40)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan Solution, 1)
	go func() {
		done <- Solve(ctx, p, Options{Workers: 4, MaxNodes: 10_000_000})
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case sol := <-done:
		if sol.Status == StatusOptimal && sol.NodesExplored > 100 {
			t.Errorf("search claims a full optimal run despite cancellation: %+v", sol)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("workers did not exit within 5s of cancellation")
	}
}

// TestParallelProgressDeterministic pins the observability stream: the
// sequence of (incumbent, nodes, improved) progress events is part of the
// deterministic trace. (The reported bound of periodic events is the popped
// node's parent bound, also deterministic.)
func TestParallelProgressDeterministic(t *testing.T) {
	ctx := context.Background()
	p := randomKnapsack(5, 15)
	type event struct {
		incumbent, bound float64
		nodes            int
		improved         bool
	}
	trace := func(workers int) []event {
		var events []event
		Solve(ctx, p, Options{Workers: workers, Progress: func(inc, bound float64, nodes int, improved bool) {
			events = append(events, event{inc, bound, nodes, improved})
		}})
		return events
	}
	ref := trace(1)
	if len(ref) == 0 {
		t.Fatal("no progress events emitted; enlarge the instance")
	}
	for _, workers := range []int{2, 4} {
		if got := trace(workers); !reflect.DeepEqual(got, ref) {
			t.Errorf("workers %d: progress stream diverged\n got %v\nwant %v", workers, got, ref)
		}
	}
}

// TestWorkersDefaults covers the Workers normalisation: zero resolves to
// GOMAXPROCS, negatives clamp to one.
func TestWorkersDefaults(t *testing.T) {
	ctx := context.Background()
	p := randomKnapsack(2, 8)
	for _, workers := range []int{0, -3} {
		sol := Solve(ctx, p, Options{Workers: workers})
		if sol.Status != StatusOptimal {
			t.Errorf("workers %d: status = %v, want optimal", workers, sol.Status)
		}
	}
}
