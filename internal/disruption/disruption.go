// Package disruption implements the failure models of the paper's
// evaluation: complete destruction of the supply network (§VII-A1/A2),
// geographically-correlated failures drawn from a bi-variate Gaussian
// centred at the network barycentre with tunable variance (§VII-A3), and
// uniform random failures as an additional synthetic model.
package disruption

import (
	"math"
	"math/rand"

	"netrecovery/internal/graph"
)

// Disruption is a set of broken nodes and edges.
type Disruption struct {
	Nodes map[graph.NodeID]bool
	Edges map[graph.EdgeID]bool
}

// NewDisruption returns an empty disruption.
func NewDisruption() Disruption {
	return Disruption{
		Nodes: make(map[graph.NodeID]bool),
		Edges: make(map[graph.EdgeID]bool),
	}
}

// Counts returns the number of broken nodes and edges.
func (d Disruption) Counts() (nodes, edges int) { return len(d.Nodes), len(d.Edges) }

// Total returns the total number of broken elements.
func (d Disruption) Total() int { return len(d.Nodes) + len(d.Edges) }

// Complete destroys every node and every edge of the graph (the setting of
// the first two Bell-Canada experiments, giving the algorithms the maximum
// range of potential solutions).
func Complete(g *graph.Graph) Disruption {
	d := NewDisruption()
	for i := 0; i < g.NumNodes(); i++ {
		d.Nodes[graph.NodeID(i)] = true
	}
	for i := 0; i < g.NumEdges(); i++ {
		d.Edges[graph.EdgeID(i)] = true
	}
	return d
}

// EdgesOnly destroys every edge but keeps nodes intact. Used by scenarios
// derived from the Steiner-forest reduction of Theorem 1 (V_B empty,
// E_B = E).
func EdgesOnly(g *graph.Graph) Disruption {
	d := NewDisruption()
	for i := 0; i < g.NumEdges(); i++ {
		d.Edges[graph.EdgeID(i)] = true
	}
	return d
}

// Random breaks each node with probability pNode and each edge with
// probability pEdge, independently.
func Random(g *graph.Graph, pNode, pEdge float64, rng *rand.Rand) Disruption {
	d := NewDisruption()
	for i := 0; i < g.NumNodes(); i++ {
		if rng.Float64() < pNode {
			d.Nodes[graph.NodeID(i)] = true
		}
	}
	for i := 0; i < g.NumEdges(); i++ {
		if rng.Float64() < pEdge {
			d.Edges[graph.EdgeID(i)] = true
		}
	}
	return d
}

// GeographicConfig parameterises the geographically-correlated model.
type GeographicConfig struct {
	// EpicenterX/Y is the centre of the disruption. When Auto is true the
	// epicentre is the barycentre of the nodes (the paper's setting).
	EpicenterX, EpicenterY float64
	Auto                   bool
	// Variance is the common variance of the bi-variate Gaussian in both
	// dimensions; larger variance destroys a wider area (the x axis of
	// Fig. 6).
	Variance float64
	// PeakProbability is the destruction probability at the epicentre. The
	// paper scales the probability with the variance so that larger
	// variances yield strictly larger failures; PeakProbability 1 reproduces
	// that behaviour.
	PeakProbability float64
}

// Geographic breaks network elements with a probability that decays with
// the squared distance from the epicentre according to a bi-variate Gaussian
// with the configured variance. An edge's failure point is the midpoint of
// its endpoints; an edge also fails implicitly (for routing purposes) when
// an endpoint fails, but only elements drawn as failed here are listed,
// matching the repair accounting of the paper (you only repair what is
// physically damaged).
func Geographic(g *graph.Graph, cfg GeographicConfig, rng *rand.Rand) Disruption {
	d := NewDisruption()
	if g.NumNodes() == 0 || cfg.Variance <= 0 {
		return d
	}
	cx, cy := cfg.EpicenterX, cfg.EpicenterY
	if cfg.Auto {
		cx, cy = g.Barycenter()
	}
	peak := cfg.PeakProbability
	if peak <= 0 {
		peak = 1
	}
	prob := func(x, y float64) float64 {
		dx := x - cx
		dy := y - cy
		return peak * math.Exp(-(dx*dx+dy*dy)/(2*cfg.Variance))
	}
	for _, n := range g.Nodes() {
		if rng.Float64() < prob(n.X, n.Y) {
			d.Nodes[n.ID] = true
		}
	}
	for _, e := range g.Edges() {
		from := g.Node(e.From)
		to := g.Node(e.To)
		mx := (from.X + to.X) / 2
		my := (from.Y + to.Y) / 2
		if rng.Float64() < prob(mx, my) {
			d.Edges[e.ID] = true
		}
	}
	return d
}
