package disruption

import (
	"math/rand"
	"sort"

	"netrecovery/internal/graph"
)

// CascadeConfig parameterises the cascading / interdependent failure model:
// an initial set of independent seed failures propagates outward because a
// failed node raises the failure probability of its still-working neighbours
// (overload shedding, shared power feeds, dependent control planes).
type CascadeConfig struct {
	// SeedProb is the independent probability that a node fails in the
	// initial shock, before any propagation.
	SeedProb float64
	// Spread is the probability that a failed node takes down each
	// still-working neighbour in the round after it fails. Zero disables
	// propagation entirely (the model degenerates to Bernoulli node
	// failures).
	Spread float64
	// EdgeProb is the probability that an edge incident to at least one
	// failed node is itself physically damaged (and therefore needs repair,
	// not just a working endpoint). Edges with both endpoints intact never
	// fail under this model.
	EdgeProb float64
	// MaxRounds bounds the number of propagation rounds; 0 means run until
	// the cascade reaches a fixpoint (bounded by the node count, since every
	// round must fail at least one new node to continue).
	MaxRounds int
}

// Cascade draws a cascading failure. The draw order is canonical — seed
// draws in ascending node-ID order, then per round the frontier in ascending
// ID order with each node's neighbours in adjacency order, then edge draws in
// ascending edge-ID order — so for a fixed graph and rng seed the result is
// reproducible across processes and worker counts.
func Cascade(g *graph.Graph, cfg CascadeConfig, rng *rand.Rand) Disruption {
	d := NewDisruption()
	n := g.NumNodes()
	if n == 0 {
		return d
	}
	// Initial shock: independent Bernoulli draws in node-ID order.
	frontier := make([]graph.NodeID, 0, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < cfg.SeedProb {
			id := graph.NodeID(i)
			d.Nodes[id] = true
			frontier = append(frontier, id)
		}
	}
	// Propagation: each newly-failed node infects each still-working
	// neighbour with probability Spread. The frontier is kept sorted so the
	// rng consumption order is independent of map iteration.
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = n
	}
	for round := 0; round < maxRounds && len(frontier) > 0 && cfg.Spread > 0; round++ {
		var next []graph.NodeID
		for _, v := range frontier {
			for _, u := range g.Neighbors(v) {
				if d.Nodes[u] {
					continue
				}
				if rng.Float64() < cfg.Spread {
					d.Nodes[u] = true
					next = append(next, u)
				}
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		frontier = next
	}
	// Co-located link damage: edges touching a failed node may be physically
	// damaged too. Edge-ID order keeps the draw sequence canonical.
	if cfg.EdgeProb > 0 {
		for _, e := range g.Edges() {
			if !d.Nodes[e.From] && !d.Nodes[e.To] {
				continue
			}
			if rng.Float64() < cfg.EdgeProb {
				d.Edges[e.ID] = true
			}
		}
	}
	return d
}
