package disruption

import (
	"math/rand"
	"reflect"
	"testing"

	"netrecovery/internal/graph"
	"netrecovery/internal/topology"
)

// lineGraph returns a path 0-1-...-(n-1) with unit capacities and costs.
func lineGraph(n int) *graph.Graph {
	g := graph.New(n, n-1)
	for i := 0; i < n; i++ {
		g.AddNode("", float64(i), 0, 1)
	}
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(graph.NodeID(i), graph.NodeID(i+1), 1, 1)
	}
	return g
}

// isolatedGraph returns n nodes and no edges.
func isolatedGraph(n int) *graph.Graph {
	g := graph.New(n, 0)
	for i := 0; i < n; i++ {
		g.AddNode("", float64(i), 0, 1)
	}
	return g
}

func TestCascadeZeroProbability(t *testing.T) {
	g := topology.BellCanada()
	d := Cascade(g, CascadeConfig{SeedProb: 0, Spread: 1, EdgeProb: 1}, rand.New(rand.NewSource(1)))
	if d.Total() != 0 {
		t.Errorf("zero seed probability must break nothing, got %d", d.Total())
	}
	// Spread 0 degenerates to independent Bernoulli node failures: every
	// draw order is still canonical, and no propagation may occur. Edges
	// only break next to failed nodes.
	d = Cascade(g, CascadeConfig{SeedProb: 0.3, Spread: 0, EdgeProb: 0}, rand.New(rand.NewSource(2)))
	if len(d.Edges) != 0 {
		t.Errorf("EdgeProb 0 must break no edges, got %d", len(d.Edges))
	}
	want := Random(g, 0.3, 0, rand.New(rand.NewSource(2)))
	if !reflect.DeepEqual(d.Nodes, want.Nodes) {
		t.Errorf("Spread 0 cascade should equal Bernoulli node failures: got %v want %v", d.Nodes, want.Nodes)
	}
}

func TestCascadeDisconnectedTopology(t *testing.T) {
	// With no edges there is nothing to propagate along and no edge can
	// break, whatever the probabilities.
	g := isolatedGraph(7)
	d := Cascade(g, CascadeConfig{SeedProb: 1, Spread: 1, EdgeProb: 1}, rand.New(rand.NewSource(3)))
	if len(d.Nodes) != 7 {
		t.Errorf("SeedProb 1 must break every node, got %d", len(d.Nodes))
	}
	if len(d.Edges) != 0 {
		t.Errorf("edgeless graph must break no edges, got %d", len(d.Edges))
	}
}

func TestCascadeSingleNodeGraph(t *testing.T) {
	g := isolatedGraph(1)
	d := Cascade(g, CascadeConfig{SeedProb: 1, Spread: 1, EdgeProb: 1}, rand.New(rand.NewSource(4)))
	if len(d.Nodes) != 1 || len(d.Edges) != 0 {
		t.Errorf("single-node cascade: got %d nodes, %d edges", len(d.Nodes), len(d.Edges))
	}
	empty := Cascade(graph.New(0, 0), CascadeConfig{SeedProb: 1, Spread: 1}, rand.New(rand.NewSource(4)))
	if empty.Total() != 0 {
		t.Errorf("empty-graph cascade must be empty, got %d", empty.Total())
	}
}

func TestCascadeFullSpreadIsAllOrNothing(t *testing.T) {
	// With Spread 1 on a connected graph, any non-empty seed set cascades to
	// every node; the only other outcome is the empty draw.
	g := lineGraph(9)
	sawAll := false
	for seed := int64(0); seed < 20; seed++ {
		d := Cascade(g, CascadeConfig{SeedProb: 0.3, Spread: 1}, rand.New(rand.NewSource(seed)))
		if n := len(d.Nodes); n != 0 && n != 9 {
			t.Fatalf("seed %d: Spread 1 on a connected graph must break all or nothing, got %d/9", seed, n)
		}
		if len(d.Nodes) == 9 {
			sawAll = true
		}
	}
	if !sawAll {
		t.Fatal("no seed produced a full cascade; SeedProb 0.3 over 9 nodes and 20 seeds should")
	}
}

func TestCascadeMaxRoundsBoundsPropagation(t *testing.T) {
	g := lineGraph(30)
	for seed := int64(0); seed < 10; seed++ {
		one := Cascade(g, CascadeConfig{SeedProb: 0.1, Spread: 1, MaxRounds: 1}, rand.New(rand.NewSource(seed)))
		full := Cascade(g, CascadeConfig{SeedProb: 0.1, Spread: 1}, rand.New(rand.NewSource(seed)))
		// The first propagation round consumes identical draws in both
		// configurations, so the bounded run's nodes are a subset of the
		// fixpoint run's.
		for v := range one.Nodes {
			if !full.Nodes[v] {
				t.Fatalf("seed %d: MaxRounds=1 broke node %d that the fixpoint run did not", seed, v)
			}
		}
		if len(one.Nodes) > len(full.Nodes) {
			t.Fatalf("seed %d: bounded cascade broke more nodes (%d) than fixpoint (%d)", seed, len(one.Nodes), len(full.Nodes))
		}
	}
}

func TestCascadeEdgesRequireFailedEndpoint(t *testing.T) {
	g := topology.BellCanada()
	d := Cascade(g, CascadeConfig{SeedProb: 0.2, Spread: 0.3, EdgeProb: 1}, rand.New(rand.NewSource(7)))
	for e := range d.Edges {
		edge := g.Edge(e)
		if !d.Nodes[edge.From] && !d.Nodes[edge.To] {
			t.Errorf("edge %d broke with both endpoints intact", e)
		}
	}
}

func TestCascadeDeterministicPerSeed(t *testing.T) {
	g := topology.BellCanada()
	cfg := CascadeConfig{SeedProb: 0.15, Spread: 0.4, EdgeProb: 0.5}
	a := Cascade(g, cfg, rand.New(rand.NewSource(11)))
	b := Cascade(g, cfg, rand.New(rand.NewSource(11)))
	if !reflect.DeepEqual(a.Nodes, b.Nodes) || !reflect.DeepEqual(a.Edges, b.Edges) {
		t.Fatal("same seed must reproduce the same cascade")
	}
	c := Cascade(g, cfg, rand.New(rand.NewSource(12)))
	if reflect.DeepEqual(a.Nodes, c.Nodes) && reflect.DeepEqual(a.Edges, c.Edges) {
		t.Fatal("different seeds should draw different cascades on this topology")
	}
}
