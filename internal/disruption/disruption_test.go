package disruption

import (
	"math/rand"
	"testing"
	"testing/quick"

	"netrecovery/internal/graph"
	"netrecovery/internal/topology"
)

func TestComplete(t *testing.T) {
	g := topology.BellCanada()
	d := Complete(g)
	nodes, edges := d.Counts()
	if nodes != g.NumNodes() || edges != g.NumEdges() {
		t.Errorf("Counts = %d, %d; want %d, %d", nodes, edges, g.NumNodes(), g.NumEdges())
	}
	if d.Total() != g.NumNodes()+g.NumEdges() {
		t.Errorf("Total = %d", d.Total())
	}
}

func TestEdgesOnly(t *testing.T) {
	g := topology.BellCanada()
	d := EdgesOnly(g)
	nodes, edges := d.Counts()
	if nodes != 0 || edges != g.NumEdges() {
		t.Errorf("Counts = %d, %d; want 0, %d", nodes, edges, g.NumEdges())
	}
}

func TestRandomExtremes(t *testing.T) {
	g := topology.BellCanada()
	rng := rand.New(rand.NewSource(1))
	none := Random(g, 0, 0, rng)
	if none.Total() != 0 {
		t.Errorf("p=0 disruption should be empty, got %d", none.Total())
	}
	all := Random(g, 1, 1, rng)
	if all.Total() != g.NumNodes()+g.NumEdges() {
		t.Errorf("p=1 disruption should break everything, got %d", all.Total())
	}
}

func TestGeographicVarianceMonotonicity(t *testing.T) {
	g := topology.BellCanada()
	// Average over several seeds: larger variance must break more elements.
	avg := func(variance float64) float64 {
		total := 0
		const runs = 20
		for seed := int64(0); seed < runs; seed++ {
			d := Geographic(g, GeographicConfig{Auto: true, Variance: variance, PeakProbability: 1}, rand.New(rand.NewSource(seed)))
			total += d.Total()
		}
		return float64(total) / runs
	}
	small := avg(10)
	large := avg(150)
	if small >= large {
		t.Errorf("expected monotone destruction: variance 10 -> %.1f, variance 150 -> %.1f", small, large)
	}
	if large < float64(g.NumNodes()+g.NumEdges())/2 {
		t.Errorf("variance 150 should destroy most of the network, got %.1f of %d", large, g.NumNodes()+g.NumEdges())
	}
}

func TestGeographicEpicenterPlacement(t *testing.T) {
	// Two clusters of nodes; an epicentre on the first cluster should break
	// far more elements there than in the second cluster.
	g := graph.New(20, 20)
	for i := 0; i < 10; i++ {
		g.AddNode("", float64(i%3), float64(i/3), 1) // cluster near origin
	}
	for i := 0; i < 10; i++ {
		g.AddNode("", 1000+float64(i%3), float64(i/3), 1) // far cluster
	}
	rng := rand.New(rand.NewSource(7))
	d := Geographic(g, GeographicConfig{EpicenterX: 1, EpicenterY: 1, Variance: 9, PeakProbability: 1}, rng)
	nearBroken, farBroken := 0, 0
	for id := range d.Nodes {
		if id < 10 {
			nearBroken++
		} else {
			farBroken++
		}
	}
	if nearBroken == 0 {
		t.Error("epicentre cluster should have failures")
	}
	if farBroken != 0 {
		t.Errorf("far cluster should be untouched, got %d failures", farBroken)
	}
}

func TestGeographicDegenerateInputs(t *testing.T) {
	g := topology.BellCanada()
	rng := rand.New(rand.NewSource(1))
	if d := Geographic(g, GeographicConfig{Variance: 0}, rng); d.Total() != 0 {
		t.Error("zero variance should break nothing")
	}
	empty := graph.New(0, 0)
	if d := Geographic(empty, GeographicConfig{Variance: 10}, rng); d.Total() != 0 {
		t.Error("empty graph should break nothing")
	}
}

func TestGeographicDefaultPeak(t *testing.T) {
	g := topology.BellCanada()
	rng := rand.New(rand.NewSource(9))
	d := Geographic(g, GeographicConfig{Auto: true, Variance: 100}, rng)
	if d.Total() == 0 {
		t.Error("default peak probability should produce failures at variance 100")
	}
}

// Property: every broken element reported by any model exists in the graph,
// and Random with a fixed seed is deterministic.
func TestDisruptionProperties(t *testing.T) {
	g := topology.BellCanada()
	f := func(seed int64) bool {
		a := Random(g, 0.3, 0.4, rand.New(rand.NewSource(seed)))
		b := Random(g, 0.3, 0.4, rand.New(rand.NewSource(seed)))
		if len(a.Nodes) != len(b.Nodes) || len(a.Edges) != len(b.Edges) {
			return false
		}
		for id := range a.Nodes {
			if !g.HasNode(id) || !b.Nodes[id] {
				return false
			}
		}
		for id := range a.Edges {
			if !g.HasEdge(id) || !b.Edges[id] {
				return false
			}
		}
		geo := Geographic(g, GeographicConfig{Auto: true, Variance: 50}, rand.New(rand.NewSource(seed)))
		for id := range geo.Nodes {
			if !g.HasNode(id) {
				return false
			}
		}
		for id := range geo.Edges {
			if !g.HasEdge(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
