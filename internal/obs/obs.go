// Package obs is the serving stack's zero-dependency observability layer:
// context-propagated request tracing with deterministic span identity,
// a bounded in-memory trace store with an HTTP debug surface, and a
// leveled structured logger (see log.go).
//
// The design constraints mirror internal/faultinject: the layer is
// compiled into every request path but a process with no enabled tracer
// pays exactly one atomic load per span site — StartSpan consults a
// package-level counter of enabled tracers before touching the context,
// and every *Span method is a nil-receiver no-op so call sites never
// branch on "is tracing on".
//
// Span identity is deterministic under test: trace and span IDs are drawn
// from a seeded splitmix64 stream, never from the wall clock. Durations
// use the tracer's injectable clock, so a test with a fixed clock gets
// byte-identical trace JSON run over run.
package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// activeTracers counts enabled tracers in the process. StartSpan's
// disabled fast path is a single load of this counter — the same
// discipline as faultinject's disarmed Fire.
var activeTracers atomic.Int64

type ctxKey int

const (
	ctxKeyTracer ctxKey = iota
	ctxKeySpan
)

// Config configures a Tracer.
type Config struct {
	// Seed seeds the splitmix64 ID stream. Zero means 1 (the stream must
	// not be the all-zeros fixed point).
	Seed uint64
	// Capacity bounds the finished-trace ring store (default 256).
	Capacity int
	// Now is the clock used for span durations (default time.Now). Span
	// identity never consults it.
	Now func() time.Time
}

// Tracer mints spans and owns the ring store finished traces land in.
// A Tracer starts disabled; Enable registers it with the package-level
// fast path.
type Tracer struct {
	enabled atomic.Bool
	idState atomic.Uint64
	now     func() time.Time
	store   *Store
}

// NewTracer builds a disabled tracer; call Enable to arm it.
func NewTracer(cfg Config) *Tracer {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = 256
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	t := &Tracer{now: now, store: newStore(capacity)}
	t.idState.Store(seed)
	return t
}

// Enable arms the tracer and registers it with the package fast path.
func (t *Tracer) Enable() {
	if t != nil && t.enabled.CompareAndSwap(false, true) {
		activeTracers.Add(1)
	}
}

// Disable disarms the tracer. In-flight spans still record into their
// trace, but new StartSpan calls become no-ops.
func (t *Tracer) Disable() {
	if t != nil && t.enabled.CompareAndSwap(true, false) {
		activeTracers.Add(-1)
	}
}

// Enabled reports whether the tracer is armed. Safe on nil.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// Store exposes the tracer's finished-trace ring.
func (t *Tracer) Store() *Store { return t.store }

// nextID draws the next deterministic 64-bit ID from the seeded stream
// (splitmix64: lock-free, each Add claims a distinct stream position).
func (t *Tracer) nextID() uint64 {
	x := t.idState.Add(0x9e3779b97f4a7c15)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// WithTracer returns a context carrying t; spans started from the
// returned context are minted by t.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, ctxKeyTracer, t)
}

// TracerFromContext returns the context's tracer, or nil.
func TracerFromContext(ctx context.Context) *Tracer {
	t, _ := ctx.Value(ctxKeyTracer).(*Tracer)
	return t
}

// Attr is one span attribute. Values are strings so trace JSON and the
// wire timing breakdown stay byte-deterministic without reflection.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed operation inside a trace. The zero value is never
// used; a nil *Span (tracing disabled) is a valid receiver for every
// method.
type Span struct {
	tracer  *Tracer
	trace   *traceRec
	traceID [16]byte
	spanID  [8]byte
	parent  [8]byte
	name    string
	start   time.Time
	root    bool

	mu    sync.Mutex
	attrs []Attr
	errs  string
	ended bool
}

// traceRec accumulates the finished spans of one trace. The root span
// owns it; when the root ends the record is published to the store
// (late-finishing spans still append under the record's lock and are
// visible to later reads).
type traceRec struct {
	traceID [16]byte
	start   time.Time

	mu       sync.Mutex
	finished []SpanSnapshot
	rootDur  time.Duration
	rootName string
	sealed   bool
}

// SpanSnapshot is the immutable record of a finished span.
type SpanSnapshot struct {
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	Name     string `json:"name"`
	// StartUS is the span start relative to the trace root start, in
	// microseconds; DurationUS the span's wall duration.
	StartUS    int64  `json:"start_us"`
	DurationUS int64  `json:"duration_us"`
	Attrs      []Attr `json:"attrs,omitempty"`
	Err        string `json:"err,omitempty"`
}

// StartSpan starts a child span of the context's current span. When no
// tracer is enabled in the process this is one atomic load; when the
// context carries no tracer or no current trace it returns (ctx, nil).
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if activeTracers.Load() == 0 {
		return ctx, nil
	}
	parent, _ := ctx.Value(ctxKeySpan).(*Span)
	if parent == nil {
		return ctx, nil
	}
	t := parent.tracer
	if !t.Enabled() {
		return ctx, nil
	}
	sp := &Span{
		tracer:  t,
		trace:   parent.trace,
		traceID: parent.traceID,
		parent:  parent.spanID,
		name:    name,
		start:   t.now(),
	}
	putUint64(sp.spanID[:], t.nextID())
	return context.WithValue(ctx, ctxKeySpan, sp), sp
}

// StartRoot starts the root span of a new trace on t. When traceparent
// is a valid W3C header the trace ID (and remote parent span ID) are
// adopted from it so the local trace stitches into the caller's; an
// empty or malformed header starts a fresh trace. Returns (ctx, nil)
// when t is nil or disabled.
func StartRoot(ctx context.Context, t *Tracer, name, traceparent string) (context.Context, *Span) {
	if !t.Enabled() {
		return ctx, nil
	}
	sp := &Span{tracer: t, name: name, start: t.now(), root: true}
	if tid, pid, ok := ParseTraceparent(traceparent); ok {
		sp.traceID = tid
		sp.parent = pid
	} else {
		putUint64(sp.traceID[:8], t.nextID())
		putUint64(sp.traceID[8:], t.nextID())
	}
	putUint64(sp.spanID[:], t.nextID())
	sp.trace = &traceRec{traceID: sp.traceID, start: sp.start, rootName: name}
	ctx = WithTracer(ctx, t)
	return context.WithValue(ctx, ctxKeySpan, sp), sp
}

// SpanFromContext returns the context's current span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if activeTracers.Load() == 0 {
		return nil
	}
	sp, _ := ctx.Value(ctxKeySpan).(*Span)
	return sp
}

// SetAttr records a string attribute. No-op on nil.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetInt records an integer attribute. No-op on nil.
func (s *Span) SetInt(key string, value int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, formatInt(value))
}

// SetBool records a boolean attribute. No-op on nil.
func (s *Span) SetBool(key string, value bool) {
	if s == nil {
		return
	}
	if value {
		s.SetAttr(key, "true")
	} else {
		s.SetAttr(key, "false")
	}
}

// SetError records an error on the span. No-op on nil or nil err.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.errs = err.Error()
	s.mu.Unlock()
}

// TraceID returns the span's 32-hex-digit trace ID ("" on nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return hexString(s.traceID[:])
}

// SpanID returns the span's 16-hex-digit span ID ("" on nil).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return hexString(s.spanID[:])
}

// Traceparent renders the span as a W3C traceparent header value
// ("" on nil) for propagation to a peer.
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	return FormatTraceparent(s.traceID, s.spanID)
}

// End finishes the span, appending its snapshot to the trace. Ending the
// root span seals the trace into the tracer's ring store. Idempotent;
// no-op on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	snap := SpanSnapshot{
		SpanID:     hexString(s.spanID[:]),
		Name:       s.name,
		StartUS:    s.start.Sub(s.trace.start).Microseconds(),
		DurationUS: s.tracer.now().Sub(s.start).Microseconds(),
		Attrs:      append([]Attr(nil), s.attrs...),
		Err:        s.errs,
	}
	s.mu.Unlock()
	if s.parent != ([8]byte{}) {
		snap.ParentID = hexString(s.parent[:])
	}
	s.trace.mu.Lock()
	s.trace.finished = append(s.trace.finished, snap)
	if s.root && !s.trace.sealed {
		s.trace.sealed = true
		s.trace.rootDur = time.Duration(snap.DurationUS) * time.Microsecond
		s.trace.mu.Unlock()
		s.tracer.store.add(s.trace)
		return
	}
	s.trace.mu.Unlock()
}

// SnapshotTrace returns the finished spans of the context's current
// trace so far (nil when tracing is off). The root span is typically
// still open when this is called from a response builder, so it is not
// included.
func SnapshotTrace(ctx context.Context) (traceID string, spans []SpanSnapshot) {
	sp := SpanFromContext(ctx)
	if sp == nil {
		return "", nil
	}
	sp.trace.mu.Lock()
	spans = append([]SpanSnapshot(nil), sp.trace.finished...)
	sp.trace.mu.Unlock()
	return hexString(sp.traceID[:]), spans
}

func putUint64(b []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}

const hexDigits = "0123456789abcdef"

func hexString(b []byte) string {
	out := make([]byte, 2*len(b))
	for i, c := range b {
		out[2*i] = hexDigits[c>>4]
		out[2*i+1] = hexDigits[c&0x0f]
	}
	return string(out)
}

func formatInt(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	var buf [21]byte
	i := len(buf)
	u := uint64(v)
	if neg {
		u = uint64(-v)
	}
	for u > 0 {
		i--
		buf[i] = byte('0' + u%10)
		u /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
