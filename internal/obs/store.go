package obs

import (
	"sort"
	"sync"
)

// TraceSummary is the list-view record of one finished trace.
type TraceSummary struct {
	TraceID    string `json:"trace_id"`
	Root       string `json:"root"`
	StartUnix  int64  `json:"start_unix_us"`
	DurationUS int64  `json:"duration_us"`
	Spans      int    `json:"spans"`
}

// TraceDetail is the by-ID view: every finished span of the trace.
type TraceDetail struct {
	TraceID    string         `json:"trace_id"`
	Root       string         `json:"root"`
	StartUnix  int64          `json:"start_unix_us"`
	DurationUS int64          `json:"duration_us"`
	Spans      []SpanSnapshot `json:"spans"`
}

// Store is a bounded ring of finished traces. When full, sealing a new
// trace overwrites the oldest. Tail subscribers receive each sealed
// trace's summary on a buffered channel (dropped, never blocked, when a
// subscriber lags).
type Store struct {
	mu    sync.Mutex
	ring  []*traceRec
	next  int
	count int
	subs  map[chan TraceSummary]struct{}
}

func newStore(capacity int) *Store {
	return &Store{
		ring: make([]*traceRec, capacity),
		subs: make(map[chan TraceSummary]struct{}),
	}
}

// Capacity returns the ring bound.
func (s *Store) Capacity() int { return len(s.ring) }

// Len returns the number of traces currently held.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

func (s *Store) add(rec *traceRec) {
	sum := summarize(rec)
	s.mu.Lock()
	s.ring[s.next] = rec
	s.next = (s.next + 1) % len(s.ring)
	if s.count < len(s.ring) {
		s.count++
	}
	for ch := range s.subs {
		select {
		case ch <- sum:
		default:
		}
	}
	s.mu.Unlock()
}

func summarize(rec *traceRec) TraceSummary {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return TraceSummary{
		TraceID:    hexString(rec.traceID[:]),
		Root:       rec.rootName,
		StartUnix:  rec.start.UnixMicro(),
		DurationUS: rec.rootDur.Microseconds(),
		Spans:      len(rec.finished),
	}
}

// List returns summaries of the held traces, newest first.
func (s *Store) List() []TraceSummary {
	recs := s.newestFirst()
	out := make([]TraceSummary, 0, len(recs))
	for _, rec := range recs {
		out = append(out, summarize(rec))
	}
	return out
}

// Slowest returns summaries of the n slowest held traces (by root
// duration, ties broken newest first).
func (s *Store) Slowest(n int) []TraceSummary {
	out := s.List()
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].DurationUS > out[j].DurationUS
	})
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// Get returns the full detail of the trace with the given 32-hex-digit
// ID, or ok=false.
func (s *Store) Get(traceID string) (TraceDetail, bool) {
	var want [16]byte
	if len(traceID) != 32 || !hexDecode(want[:], traceID) {
		return TraceDetail{}, false
	}
	for _, rec := range s.newestFirst() {
		if rec.traceID != want {
			continue
		}
		rec.mu.Lock()
		det := TraceDetail{
			TraceID:    traceID,
			Root:       rec.rootName,
			StartUnix:  rec.start.UnixMicro(),
			DurationUS: rec.rootDur.Microseconds(),
			Spans:      append([]SpanSnapshot(nil), rec.finished...),
		}
		rec.mu.Unlock()
		return det, true
	}
	return TraceDetail{}, false
}

// newestFirst snapshots the ring contents, newest insertion first.
func (s *Store) newestFirst() []*traceRec {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*traceRec, 0, s.count)
	for i := 1; i <= s.count; i++ {
		out = append(out, s.ring[(s.next-i+len(s.ring))%len(s.ring)])
	}
	return out
}

// Subscribe registers a tail subscriber. The returned channel receives
// each newly sealed trace's summary; call the cancel func to detach.
func (s *Store) Subscribe() (<-chan TraceSummary, func()) {
	ch := make(chan TraceSummary, 64)
	s.mu.Lock()
	s.subs[ch] = struct{}{}
	s.mu.Unlock()
	return ch, func() {
		s.mu.Lock()
		delete(s.subs, ch)
		s.mu.Unlock()
	}
}
