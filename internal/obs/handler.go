package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// Handler returns the /debug/traces HTTP surface for the tracer's store:
//
//	GET <prefix>          — list held traces, newest first
//	GET <prefix>?slowest=N — the N slowest held traces
//	GET <prefix>/tail     — SSE feed of traces as they seal
//	GET <prefix>/{id}     — full span detail of one trace
//
// prefix is the mount point without a trailing slash, e.g.
// "/debug/traces"; it is needed to strip the path when extracting {id}.
func (t *Tracer) Handler(prefix string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		rest := r.URL.Path
		if len(rest) >= len(prefix) {
			rest = rest[len(prefix):]
		}
		for len(rest) > 0 && rest[0] == '/' {
			rest = rest[1:]
		}
		switch rest {
		case "":
			t.serveList(w, r)
		case "tail":
			t.serveTail(w, r)
		default:
			t.serveOne(w, rest)
		}
	})
}

type traceListBody struct {
	Count    int            `json:"count"`
	Capacity int            `json:"capacity"`
	Enabled  bool           `json:"enabled"`
	Traces   []TraceSummary `json:"traces"`
}

func (t *Tracer) serveList(w http.ResponseWriter, r *http.Request) {
	var traces []TraceSummary
	if n, err := strconv.Atoi(r.URL.Query().Get("slowest")); err == nil && n > 0 {
		traces = t.store.Slowest(n)
	} else {
		traces = t.store.List()
	}
	if traces == nil {
		traces = []TraceSummary{}
	}
	writeDebugJSON(w, http.StatusOK, traceListBody{
		Count:    t.store.Len(),
		Capacity: t.store.Capacity(),
		Enabled:  t.Enabled(),
		Traces:   traces,
	})
}

func (t *Tracer) serveOne(w http.ResponseWriter, id string) {
	det, ok := t.store.Get(id)
	if !ok {
		writeDebugJSON(w, http.StatusNotFound, map[string]string{"error": "trace not found"})
		return
	}
	writeDebugJSON(w, http.StatusOK, det)
}

func (t *Tracer) serveTail(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	ch, cancel := t.store.Subscribe()
	defer cancel()
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case sum := <-ch:
			b, err := json.Marshal(sum)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "event: trace\ndata: %s\n\n", b)
			fl.Flush()
		}
	}
}

func writeDebugJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	b = append(b, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(b)
}
