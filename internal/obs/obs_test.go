package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fixedClock returns a clock that advances a fixed step per call, so
// span durations are deterministic.
func fixedClock(step time.Duration) func() time.Time {
	t0 := time.Unix(1700000000, 0).UTC()
	n := 0
	return func() time.Time {
		t := t0.Add(time.Duration(n) * step)
		n++
		return t
	}
}

func newTestTracer(t *testing.T, seed uint64) *Tracer {
	t.Helper()
	tr := NewTracer(Config{Seed: seed, Capacity: 8, Now: fixedClock(time.Millisecond)})
	tr.Enable()
	t.Cleanup(tr.Disable)
	return tr
}

// Span identity must be a pure function of the seed: two tracers with
// the same seed mint byte-identical trace and span IDs regardless of
// wall clock.
func TestDeterministicIDs(t *testing.T) {
	run := func() (string, string, string) {
		tr := newTestTracer(t, 42)
		ctx, root := StartRoot(context.Background(), tr, "req", "")
		_, child := StartSpan(ctx, "child")
		child.End()
		root.End()
		return root.TraceID(), root.SpanID(), child.SpanID()
	}
	t1, s1, c1 := run()
	t2, s2, c2 := run()
	if t1 != t2 || s1 != s2 || c1 != c2 {
		t.Fatalf("IDs not deterministic: (%s,%s,%s) vs (%s,%s,%s)", t1, s1, c1, t2, s2, c2)
	}
	if len(t1) != 32 || len(s1) != 16 {
		t.Fatalf("bad ID lengths: trace %q span %q", t1, s1)
	}
	if t1[:16] == t1[16:] {
		t.Fatalf("trace ID halves identical — stream not advancing: %s", t1)
	}
}

func TestDisabledPathIsNoop(t *testing.T) {
	if activeTracers.Load() != 0 {
		t.Skip("another enabled tracer in process")
	}
	ctx, sp := StartSpan(context.Background(), "x")
	if sp != nil {
		t.Fatal("expected nil span with no enabled tracer")
	}
	// All methods must be nil-safe.
	sp.SetAttr("k", "v")
	sp.SetInt("n", 1)
	sp.SetBool("b", true)
	sp.SetError(context.Canceled)
	sp.End()
	if got := sp.TraceID(); got != "" {
		t.Fatalf("nil span TraceID = %q", got)
	}
	if SpanFromContext(ctx) != nil {
		t.Fatal("context should carry no span")
	}
	tid, spans := SnapshotTrace(ctx)
	if tid != "" || spans != nil {
		t.Fatal("snapshot of untraced context should be empty")
	}
}

func TestTraceSealsIntoStoreWithNesting(t *testing.T) {
	tr := newTestTracer(t, 7)
	ctx, root := StartRoot(context.Background(), tr, "/v1/plan", "")
	ctx2, a := StartSpan(ctx, "cache.lookup")
	a.SetAttr("outcome", "miss")
	_, b := StartSpan(ctx2, "solve")
	b.SetInt("iterations", 31)
	b.End()
	a.End()

	// Before the root ends, SnapshotTrace sees the finished children.
	tid, spans := SnapshotTrace(ctx)
	if tid != root.TraceID() {
		t.Fatalf("snapshot trace ID %s want %s", tid, root.TraceID())
	}
	if len(spans) != 2 {
		t.Fatalf("snapshot spans = %d, want 2", len(spans))
	}
	if tr.Store().Len() != 0 {
		t.Fatal("trace sealed before root ended")
	}
	root.End()
	if tr.Store().Len() != 1 {
		t.Fatalf("store len = %d after root end", tr.Store().Len())
	}
	det, ok := tr.Store().Get(root.TraceID())
	if !ok {
		t.Fatal("trace not found by ID")
	}
	if len(det.Spans) != 3 {
		t.Fatalf("trace has %d spans, want 3", len(det.Spans))
	}
	// solve's parent must be cache.lookup, cache.lookup's parent the root.
	byName := map[string]SpanSnapshot{}
	for _, s := range det.Spans {
		byName[s.Name] = s
	}
	if byName["solve"].ParentID != byName["cache.lookup"].SpanID {
		t.Fatal("solve not parented under cache.lookup")
	}
	if byName["cache.lookup"].ParentID != root.SpanID() {
		t.Fatal("cache.lookup not parented under root")
	}
	if byName["solve"].Attrs[0].Value != "31" {
		t.Fatalf("attr not recorded: %+v", byName["solve"].Attrs)
	}
}

func TestRingStoreBounded(t *testing.T) {
	tr := newTestTracer(t, 9)
	for i := 0; i < 20; i++ {
		_, root := StartRoot(context.Background(), tr, "req", "")
		root.End()
	}
	if got := tr.Store().Len(); got != 8 {
		t.Fatalf("ring len = %d, want capacity 8", got)
	}
	if got := len(tr.Store().List()); got != 8 {
		t.Fatalf("list len = %d, want 8", got)
	}
}

func TestTraceparentRoundTripAndStitch(t *testing.T) {
	tr := newTestTracer(t, 11)
	ctx, root := StartRoot(context.Background(), tr, "client", "")
	_ = ctx
	hdr := root.Traceparent()
	tid, pid, ok := ParseTraceparent(hdr)
	if !ok {
		t.Fatalf("own header did not parse: %q", hdr)
	}
	if hexString(tid[:]) != root.TraceID() || hexString(pid[:]) != root.SpanID() {
		t.Fatal("round-trip mismatch")
	}
	// A second tracer (the peer) adopts the trace ID.
	tr2 := newTestTracer(t, 99)
	_, peerRoot := StartRoot(context.Background(), tr2, "peer", hdr)
	if peerRoot.TraceID() != root.TraceID() {
		t.Fatalf("peer trace %s did not adopt %s", peerRoot.TraceID(), root.TraceID())
	}
	peerRoot.End()
	det, ok := tr2.Store().Get(root.TraceID())
	if !ok {
		t.Fatal("stitched trace not in peer store")
	}
	if det.Spans[0].ParentID != root.SpanID() {
		t.Fatal("peer root must carry the remote parent span ID")
	}

	for _, bad := range []string{
		"", "00-abc", strings.Repeat("0", 55),
		"00-00000000000000000000000000000000-0000000000000000-01",
		"zz-" + hdr[3:],
	} {
		if _, _, ok := ParseTraceparent(bad); ok {
			t.Fatalf("malformed header accepted: %q", bad)
		}
	}
}

func TestSlowestOrdering(t *testing.T) {
	// Each trace takes one clock step (1ms) except the ones we stretch
	// with extra child spans — more clock calls, longer root duration.
	tr := NewTracer(Config{Seed: 5, Capacity: 8, Now: fixedClock(time.Millisecond)})
	tr.Enable()
	defer tr.Disable()
	for i := 0; i < 4; i++ {
		ctx, root := StartRoot(context.Background(), tr, "req", "")
		for j := 0; j < i; j++ {
			_, sp := StartSpan(ctx, "pad")
			sp.End()
		}
		root.End()
	}
	slow := tr.Store().Slowest(2)
	if len(slow) != 2 {
		t.Fatalf("slowest(2) returned %d", len(slow))
	}
	if slow[0].DurationUS < slow[1].DurationUS {
		t.Fatalf("not sorted by duration: %v", slow)
	}
	if slow[0].Spans != 4 {
		t.Fatalf("slowest trace should be the most padded one, got %d spans", slow[0].Spans)
	}
}

func TestDebugHandler(t *testing.T) {
	tr := newTestTracer(t, 13)
	ctx, root := StartRoot(context.Background(), tr, "/v1/plan", "")
	_, sp := StartSpan(ctx, "solve")
	sp.End()
	root.End()

	h := tr.Handler("/debug/traces")

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var list traceListBody
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatalf("list decode: %v\n%s", err, rec.Body.String())
	}
	if list.Count != 1 || len(list.Traces) != 1 || list.Traces[0].Spans != 2 {
		t.Fatalf("unexpected list: %+v", list)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/"+root.TraceID(), nil))
	var det TraceDetail
	if err := json.Unmarshal(rec.Body.Bytes(), &det); err != nil {
		t.Fatalf("detail decode: %v", err)
	}
	if len(det.Spans) != 2 || det.Root != "/v1/plan" {
		t.Fatalf("unexpected detail: %+v", det)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/ffffffffffffffffffffffffffffffff", nil))
	if rec.Code != 404 {
		t.Fatalf("missing trace: code %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/debug/traces", nil))
	if rec.Code != 405 {
		t.Fatalf("POST: code %d", rec.Code)
	}
}

func TestTailSubscribe(t *testing.T) {
	tr := newTestTracer(t, 17)
	ch, cancel := tr.Store().Subscribe()
	defer cancel()
	_, root := StartRoot(context.Background(), tr, "req", "")
	root.End()
	select {
	case sum := <-ch:
		if sum.TraceID != root.TraceID() {
			t.Fatalf("tail delivered %s want %s", sum.TraceID, root.TraceID())
		}
	default:
		t.Fatal("no tail notification")
	}
}

func TestLoggerFormatsAndCorrelation(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(LoggerConfig{W: &buf, Format: "json", Level: LevelInfo, Now: fixedClock(0)})
	tr := newTestTracer(t, 19)
	ctx, root := StartRoot(context.Background(), tr, "req", "")
	l.Info(ctx, "hello", "k", 7, "s", "v v")
	l.Debug(ctx, "dropped")
	root.End()

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line not JSON: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "hello" || rec["level"] != "info" {
		t.Fatalf("bad line: %v", rec)
	}
	if rec["trace_id"] != root.TraceID() {
		t.Fatalf("trace correlation missing: %v", rec)
	}
	if rec["k"] != float64(7) || rec["s"] != "v v" {
		t.Fatalf("kv missing: %v", rec)
	}
	if strings.Count(buf.String(), "\n") != 1 {
		t.Fatalf("debug line should be dropped below level:\n%s", buf.String())
	}

	buf.Reset()
	lt := NewLogger(LoggerConfig{W: &buf, Format: "text", Level: LevelInfo, Now: fixedClock(0)})
	lt.Warn(context.Background(), "spaced message", "key", "has space")
	line := buf.String()
	if !strings.Contains(line, "WARN spaced message") || !strings.Contains(line, `key="has space"`) {
		t.Fatalf("bad text line: %q", line)
	}

	// Nil logger: all methods are no-ops.
	var nilLog *Logger
	nilLog.Info(context.Background(), "ignored")
	nilLog.ErrorClass(context.Background(), "c", "ignored")
}

func TestLoggerRateLimit(t *testing.T) {
	var buf bytes.Buffer
	clock := fixedClock(0) // frozen: everything lands in one window
	l := NewLogger(LoggerConfig{W: &buf, Format: "json", Level: LevelInfo, Now: clock})
	for i := 0; i < 50; i++ {
		l.ErrorClass(context.Background(), "http", "boom")
	}
	if got := strings.Count(buf.String(), "\n"); got != classBurst {
		t.Fatalf("emitted %d lines, want burst %d", got, classBurst)
	}
	// Roll the window: the next line must carry the suppressed count.
	l.mu.Lock()
	l.limits["http"].windowAt = l.limits["http"].windowAt.Add(-2 * time.Second)
	l.mu.Unlock()
	buf.Reset()
	l.ErrorClass(context.Background(), "http", "boom")
	if !strings.Contains(buf.String(), `"suppressed":40`) {
		t.Fatalf("suppressed count missing: %s", buf.String())
	}
}

func TestLineWriter(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(LoggerConfig{W: &buf, Format: "text", Level: LevelInfo, Now: fixedClock(0)})
	w := l.LineWriter(LevelWarn, "http")
	if _, err := w.Write([]byte("http: TLS handshake error\n")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "WARN http: TLS handshake error") {
		t.Fatalf("line writer output: %q", buf.String())
	}
}
