package obs

// W3C trace-context propagation: the peer-fill client attaches the
// current span as a `traceparent` request header and the peer's server
// middleware adopts the trace ID, so one logical request stitches into a
// single trace across the cluster. Only version 00 with the sampled flag
// is emitted; parsing accepts any two-hex-digit version and flags so a
// header minted by another tracer still stitches.

// FormatTraceparent renders "00-<32 hex trace>-<16 hex span>-01".
func FormatTraceparent(traceID [16]byte, spanID [8]byte) string {
	return "00-" + hexString(traceID[:]) + "-" + hexString(spanID[:]) + "-01"
}

// ParseTraceparent parses a W3C traceparent header value. ok is false on
// any malformed input, including the all-zero trace or span ID the spec
// forbids.
func ParseTraceparent(h string) (traceID [16]byte, spanID [8]byte, ok bool) {
	// version(2) - trace(32) - span(16) - flags(2) with literal dashes.
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return traceID, spanID, false
	}
	if !hexDecode(traceID[:], h[3:35]) || !hexDecode(spanID[:], h[36:52]) {
		return traceID, spanID, false
	}
	if !isHex(h[0]) || !isHex(h[1]) || !isHex(h[53]) || !isHex(h[54]) {
		return traceID, spanID, false
	}
	if traceID == ([16]byte{}) || spanID == ([8]byte{}) {
		return traceID, spanID, false
	}
	return traceID, spanID, true
}

func hexDecode(dst []byte, src string) bool {
	for i := range dst {
		hi, ok1 := hexVal(src[2*i])
		lo, ok2 := hexVal(src[2*i+1])
		if !ok1 || !ok2 {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

func isHex(c byte) bool {
	_, ok := hexVal(c)
	return ok
}
