package obs

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level is a log severity.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return "unknown"
}

// ParseLevel maps a flag value to a Level (defaults to info).
func ParseLevel(s string) Level {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug
	case "warn", "warning":
		return LevelWarn
	case "error":
		return LevelError
	}
	return LevelInfo
}

// Logger is a leveled structured logger emitting one line per event in
// either logfmt-ish text or JSON. All methods are nil-receiver no-ops so
// library code can log unconditionally. Context-taking variants attach
// trace_id/span_id from the current span, correlating log lines with the
// trace store.
type Logger struct {
	mu     sync.Mutex
	w      io.Writer
	json   bool
	level  Level
	now    func() time.Time
	limits map[string]*classLimit
}

// classLimit rate-limits one event class: at most burst lines per
// window; the first line after a window rolls reports how many were
// suppressed.
type classLimit struct {
	burst      int
	window     time.Duration
	windowAt   time.Time
	emitted    int
	suppressed int
}

// LoggerConfig configures NewLogger.
type LoggerConfig struct {
	// W is the destination (required).
	W io.Writer
	// Format is "json" or "text" (default text).
	Format string
	// Level is the minimum severity emitted.
	Level Level
	// Now is the timestamp clock (default time.Now).
	Now func() time.Time
}

// NewLogger builds a Logger.
func NewLogger(cfg LoggerConfig) *Logger {
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &Logger{
		w:      cfg.W,
		json:   cfg.Format == "json",
		level:  cfg.Level,
		now:    now,
		limits: make(map[string]*classLimit),
	}
}

// Debug logs at debug level. kv is alternating key, value pairs.
func (l *Logger) Debug(ctx context.Context, msg string, kv ...any) {
	l.log(ctx, LevelDebug, "", msg, kv)
}

// Info logs at info level.
func (l *Logger) Info(ctx context.Context, msg string, kv ...any) {
	l.log(ctx, LevelInfo, "", msg, kv)
}

// Warn logs at warn level.
func (l *Logger) Warn(ctx context.Context, msg string, kv ...any) {
	l.log(ctx, LevelWarn, "", msg, kv)
}

// Error logs at error level.
func (l *Logger) Error(ctx context.Context, msg string, kv ...any) {
	l.log(ctx, LevelError, "", msg, kv)
}

// ErrorClass logs at error level under a rate-limited class: at most 10
// lines per class per second, with a suppressed=N count reported when
// the window rolls. Use it for error paths that can fire per-request.
func (l *Logger) ErrorClass(ctx context.Context, class, msg string, kv ...any) {
	l.log(ctx, LevelError, class, msg, kv)
}

// WarnClass logs at warn level under a rate-limited class.
func (l *Logger) WarnClass(ctx context.Context, class, msg string, kv ...any) {
	l.log(ctx, LevelWarn, class, msg, kv)
}

const (
	classBurst  = 10
	classWindow = time.Second
)

func (l *Logger) log(ctx context.Context, level Level, class, msg string, kv []any) {
	if l == nil || level < l.level {
		return
	}
	var traceID, spanID string
	if ctx != nil {
		if sp := SpanFromContext(ctx); sp != nil {
			traceID, spanID = sp.TraceID(), sp.SpanID()
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	ts := l.now()
	suppressed := 0
	if class != "" {
		lim := l.limits[class]
		if lim == nil {
			lim = &classLimit{burst: classBurst, window: classWindow, windowAt: ts}
			l.limits[class] = lim
		}
		if ts.Sub(lim.windowAt) >= lim.window {
			suppressed = lim.suppressed
			lim.windowAt, lim.emitted, lim.suppressed = ts, 0, 0
		}
		if lim.emitted >= lim.burst {
			lim.suppressed++
			return
		}
		lim.emitted++
	}
	var b []byte
	if l.json {
		b = appendJSONLine(b, ts, level, class, msg, traceID, spanID, suppressed, kv)
	} else {
		b = appendTextLine(b, ts, level, class, msg, traceID, spanID, suppressed, kv)
	}
	l.w.Write(b)
}

func appendJSONLine(b []byte, ts time.Time, level Level, class, msg, traceID, spanID string, suppressed int, kv []any) []byte {
	b = append(b, `{"ts":`...)
	b = strconv.AppendQuote(b, ts.UTC().Format(time.RFC3339Nano))
	b = append(b, `,"level":`...)
	b = strconv.AppendQuote(b, level.String())
	if class != "" {
		b = append(b, `,"class":`...)
		b = strconv.AppendQuote(b, class)
	}
	b = append(b, `,"msg":`...)
	b = strconv.AppendQuote(b, msg)
	if traceID != "" {
		b = append(b, `,"trace_id":`...)
		b = strconv.AppendQuote(b, traceID)
		b = append(b, `,"span_id":`...)
		b = strconv.AppendQuote(b, spanID)
	}
	if suppressed > 0 {
		b = append(b, `,"suppressed":`...)
		b = strconv.AppendInt(b, int64(suppressed), 10)
	}
	for i := 0; i+1 < len(kv); i += 2 {
		b = append(b, ',')
		b = strconv.AppendQuote(b, fmt.Sprint(kv[i]))
		b = append(b, ':')
		b = appendJSONValue(b, kv[i+1])
	}
	return append(b, "}\n"...)
}

func appendJSONValue(b []byte, v any) []byte {
	switch x := v.(type) {
	case int:
		return strconv.AppendInt(b, int64(x), 10)
	case int64:
		return strconv.AppendInt(b, x, 10)
	case uint64:
		return strconv.AppendUint(b, x, 10)
	case float64:
		return strconv.AppendFloat(b, x, 'g', -1, 64)
	case bool:
		return strconv.AppendBool(b, x)
	default:
		return strconv.AppendQuote(b, fmt.Sprint(v))
	}
}

func appendTextLine(b []byte, ts time.Time, level Level, class, msg, traceID, spanID string, suppressed int, kv []any) []byte {
	b = append(b, ts.UTC().Format("2006-01-02T15:04:05.000Z")...)
	b = append(b, ' ')
	b = append(b, strings.ToUpper(level.String())...)
	b = append(b, ' ')
	b = append(b, msg...)
	if class != "" {
		b = append(b, " class="...)
		b = append(b, class...)
	}
	if traceID != "" {
		b = append(b, " trace_id="...)
		b = append(b, traceID...)
		b = append(b, " span_id="...)
		b = append(b, spanID...)
	}
	if suppressed > 0 {
		b = append(b, " suppressed="...)
		b = strconv.AppendInt(b, int64(suppressed), 10)
	}
	for i := 0; i+1 < len(kv); i += 2 {
		b = append(b, ' ')
		b = append(b, fmt.Sprint(kv[i])...)
		b = append(b, '=')
		b = appendTextValue(b, kv[i+1])
	}
	return append(b, '\n')
}

func appendTextValue(b []byte, v any) []byte {
	s := fmt.Sprint(v)
	if strings.ContainsAny(s, " \t\n\"=") {
		return strconv.AppendQuote(b, s)
	}
	return append(b, s...)
}

// lineWriter adapts the logger to io.Writer for libraries that take a
// *log.Logger (http.Server.ErrorLog). Each Write becomes one rate-
// limited line at the configured level and class.
type lineWriter struct {
	l     *Logger
	level Level
	class string
}

// LineWriter returns an io.Writer that logs each written line through l
// at the given level under a rate-limited class. Wrap it in
// log.New(w, "", 0) to feed http.Server.ErrorLog.
func (l *Logger) LineWriter(level Level, class string) io.Writer {
	return &lineWriter{l: l, level: level, class: class}
}

func (w *lineWriter) Write(p []byte) (int, error) {
	msg := strings.TrimRight(string(p), "\n")
	if w.level >= LevelError {
		w.l.ErrorClass(context.Background(), w.class, msg)
	} else {
		w.l.WarnClass(context.Background(), w.class, msg)
	}
	return len(p), nil
}
