package netrecovery

import (
	"context"
	"fmt"
	"time"

	"netrecovery/internal/ensemble"
)

// The ensemble engine is the Monte-Carlo layer of the library: it draws
// thousands of correlated disruption samples over one scenario, solves the
// distinct samples concurrently (deduplicating by content fingerprint and
// routing through a PlanCache when provided) and aggregates the plans into
// robust-plan statistics — expected cost, quantiles, CVaR of flow loss and
// repair cost, per-element repair frequencies and a consensus repair plan
// evaluated against every sample. The types below alias the engine's types
// so callers outside the module can use them through the facade.
type (
	// EnsembleSampler declares the correlated failure model samples are
	// drawn from; see the aliased type for the per-model parameters.
	EnsembleSampler = ensemble.SamplerSpec
	// EnsembleReport is the aggregated outcome. Its JSON encoding is
	// byte-identical across runs and worker counts for a fixed
	// (scenario, sampler, seed).
	EnsembleReport = ensemble.Report
	// EnsembleDist summarises one per-sample metric (mean, quantiles,
	// CVaR).
	EnsembleDist = ensemble.Dist
	// EnsembleConsensus is the robust plan assembled from high-frequency
	// repairs.
	EnsembleConsensus = ensemble.Consensus
	// EnsembleRepairStat is the ensemble-wide repair frequency of one
	// element.
	EnsembleRepairStat = ensemble.RepairStat
	// EnsembleProgress is one progress notification (Done of Total
	// samples).
	EnsembleProgress = ensemble.Progress
)

// Failure models understood by EnsembleSampler.Model.
const (
	// EnsembleGeographic draws epicenter + distance-decay failures (the
	// paper's geographically-correlated model, optionally with a per-sample
	// epicentre jitter).
	EnsembleGeographic = ensemble.ModelGeographic
	// EnsembleBernoulli breaks every element independently.
	EnsembleBernoulli = ensemble.ModelBernoulli
	// EnsembleCascade draws an initial shock that propagates to neighbours
	// of failed nodes.
	EnsembleCascade = ensemble.ModelCascade
)

// EnsembleSpec declares one ensemble run.
type EnsembleSpec struct {
	// Scenario is the base instance (Network.Snapshot); sampled disruptions
	// are unioned with its broken sets. The snapshot is never mutated.
	Scenario *Scenario
	// Sampler is the failure model to draw from.
	Sampler EnsembleSampler
	// Samples is the ensemble size (0 = 1000).
	Samples int
	// Seed roots the per-sample random streams: the same
	// (scenario, sampler, seed) triple reproduces the exact sample set and
	// a byte-identical report.
	Seed int64
	// Algorithm solves every sample (default ISP).
	Algorithm Algorithm
	// FastISP mirrors WithFastISP; OPTTimeLimit/OPTMaxNodes mirror
	// WithOPTBudget.
	FastISP      bool
	OPTTimeLimit time.Duration
	OPTMaxNodes  int
	// Workers bounds the concurrent solves (0 = GOMAXPROCS). The report is
	// identical for every value.
	Workers int
	// Alpha is the CVaR confidence level in (0, 1) (0 = 0.95).
	Alpha float64
	// ConsensusThreshold is the repair-frequency cut-off in (0, 1] for the
	// consensus plan (0 = 0.9: an element must be repaired in >= 90% of
	// samples).
	ConsensusThreshold float64
	// Cache, when non-nil, routes unique-sample solves through the shared
	// plan cache, so re-running an ensemble (or overlapping another
	// workload's scenarios) answers repeats in microseconds. The report's
	// HitRatio field accounts both fingerprint dedup and cache hits.
	Cache *PlanCache
	// OnProgress, when set, receives a notification after each unique
	// sample completes. Calls are serialised; the callback must be cheap.
	OnProgress func(EnsembleProgress)
}

// RunEnsemble executes the ensemble and returns the aggregated robust-plan
// report. Individual sample solve failures are isolated (counted in
// Report.Failures); a cancelled context aborts the run with ctx.Err().
func RunEnsemble(ctx context.Context, spec EnsembleSpec) (*EnsembleReport, error) {
	if spec.Scenario == nil || spec.Scenario.inner == nil {
		return nil, fmt.Errorf("netrecovery: RunEnsemble called with a nil scenario")
	}
	inner := ensemble.Spec{
		Scenario:           spec.Scenario.inner,
		Sampler:            spec.Sampler,
		Samples:            spec.Samples,
		Seed:               spec.Seed,
		Algorithm:          string(spec.Algorithm),
		Fast:               spec.FastISP,
		OPTTimeLimit:       spec.OPTTimeLimit,
		OPTMaxNodes:        spec.OPTMaxNodes,
		Workers:            spec.Workers,
		Alpha:              spec.Alpha,
		ConsensusThreshold: spec.ConsensusThreshold,
		OnProgress:         spec.OnProgress,
	}
	if spec.Cache != nil {
		inner.Cache = spec.Cache.inner
	}
	return ensemble.Run(ctx, inner)
}
