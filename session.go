package netrecovery

import (
	"context"
	"fmt"
	"sync"

	"netrecovery/internal/demand"
	"netrecovery/internal/graph"
	"netrecovery/internal/heuristics"
	"netrecovery/internal/scenario"
)

// Delta is one incremental change to a scenario: a node or link breaking or
// being repaired in the field, or a demand pair's required flow changing.
// Build deltas with the constructors (BreakNode, RepairNode, BreakLink,
// RepairLink, SetDemand) and apply them with Scenario.Apply or
// PlannerSession.Apply.
//
// Deltas never change the topology itself — nodes, links, capacities and
// repair costs are fixed for the lifetime of a recovery run. That invariant
// is what makes delta application and fingerprint maintenance O(changed
// state) instead of O(network), and what lets planner sessions keep solver
// state warm across re-plans.
type Delta struct {
	inner scenario.Delta
}

// BreakNode returns a delta marking the working node as broken.
func BreakNode(id int) Delta {
	return Delta{inner: scenario.Delta{Kind: scenario.DeltaBreakNode, Node: graph.NodeID(id)}}
}

// RepairNode returns a delta removing the node from the broken set (its
// repair completed in the field).
func RepairNode(id int) Delta {
	return Delta{inner: scenario.Delta{Kind: scenario.DeltaRepairNode, Node: graph.NodeID(id)}}
}

// BreakLink returns a delta marking the working link as broken.
func BreakLink(id int) Delta {
	return Delta{inner: scenario.Delta{Kind: scenario.DeltaBreakLink, Edge: graph.EdgeID(id)}}
}

// RepairLink returns a delta removing the link from the broken set.
func RepairLink(id int) Delta {
	return Delta{inner: scenario.Delta{Kind: scenario.DeltaRepairLink, Edge: graph.EdgeID(id)}}
}

// SetDemand returns a delta overwriting the required flow of the demand pair
// (IDs are assigned by Network.AddDemand in insertion order, starting at 0).
// Setting a flow of 0 deactivates the pair; a later SetDemand can
// reactivate it.
func SetDemand(pairID int, flow float64) Delta {
	return Delta{inner: scenario.Delta{Kind: scenario.DeltaSetDemand, Pair: demand.PairID(pairID), Flow: flow}}
}

// String summarises the delta (e.g. "repair_node(7)").
func (d Delta) String() string { return d.inner.String() }

// Apply returns a new immutable snapshot with the deltas applied in order,
// leaving the receiver unchanged. Application is atomic: if any delta is
// invalid (unknown element, breaking an already-broken element, repairing a
// working one, a negative flow) an error is returned and no snapshot is
// produced.
//
// The new snapshot shares immutable structure with its parent and carries an
// incrementally updated fingerprint, so chains of Apply calls are cheap —
// O(changed state) per step — and Fingerprint on the results is free.
func (sc *Scenario) Apply(deltas ...Delta) (*Scenario, error) {
	if sc == nil || sc.inner == nil {
		return nil, fmt.Errorf("netrecovery: Apply called on a nil scenario")
	}
	inner := make([]scenario.Delta, len(deltas))
	for i, d := range deltas {
		inner[i] = d.inner
	}
	next, err := sc.inner.Apply(inner...)
	if err != nil {
		return nil, err
	}
	return &Scenario{inner: next}, nil
}

// SessionStats is a point-in-time snapshot of a PlannerSession's counters.
type SessionStats struct {
	// Plans counts completed Plan/Apply solves (failed solves excluded).
	Plans int
	// Warm reports whether the session runs the warm ISP path. False means
	// the configured algorithm has no warm implementation and every re-plan
	// is a cold solve.
	Warm bool
	// SplitHits / SplitMisses count split-LP subproblems answered from the
	// session memo vs solved (warm sessions only).
	SplitHits, SplitMisses int
	// RoutabilityHits / RoutabilityMisses count exact routability tests
	// answered from the session memo vs solved (warm sessions only).
	RoutabilityHits, RoutabilityMisses int
}

// PlannerSession plans one evolving scenario incrementally: it owns the
// current snapshot and re-plans after each batch of deltas, keeping solver
// state warm between re-plans. For the ISP algorithm (the default), the
// session memoises the LP subproblems ISP solves — split amounts and
// routability tests — by content address, so a re-plan after a small delta
// re-solves only the subproblems the delta actually changed. Re-plans are
// plan-equivalent to cold solves of the same snapshot: the session is purely
// a latency optimisation (see EXPERIMENTS.md for measured speedups per delta
// kind).
//
// Algorithms other than ISP have no warm implementation; their sessions
// still track the evolving scenario but solve each re-plan cold
// (Stats().Warm reports which mode the session runs in).
//
// Sessions deliberately bypass any WithCache plan cache: a session IS a
// finer-grained cache over one evolving scenario, and its memos stay useful
// across deltas where a whole-plan cache would miss on every new
// fingerprint.
//
// A PlannerSession is safe for concurrent use; calls are serialised
// internally.
type PlannerSession struct {
	mu      sync.Mutex
	planner *Planner
	isp     *heuristics.ISPSession // nil when the algorithm has no warm path
	cur     *scenario.Scenario
	plans   int
}

// NewSession starts a planning session on the given snapshot. The session
// keeps its own reference; later deltas evolve the session's snapshot
// without affecting the caller's.
func (p *Planner) NewSession(sc *Scenario) (*PlannerSession, error) {
	if sc == nil || sc.inner == nil {
		return nil, fmt.Errorf("netrecovery: NewSession called with a nil scenario")
	}
	if err := sc.inner.Validate(); err != nil {
		return nil, err
	}
	s := &PlannerSession{planner: p, cur: sc.inner}
	if p.cfg.alg == ISP {
		s.isp = heuristics.NewISPSession(p.params())
	}
	return s, nil
}

// params assembles the registry params from the planner configuration
// (shared by Plan and NewSession so both paths configure solvers
// identically).
func (p *Planner) params() heuristics.Params {
	params := heuristics.Params{
		Fast:         p.cfg.fast,
		OPTTimeLimit: p.cfg.optTimeLimit,
		OPTMaxNodes:  p.cfg.optMaxNodes,
		OPTWorkers:   p.cfg.workers,
	}
	if p.cfg.progress != nil {
		fn := p.cfg.progress
		params.Progress = func(ev heuristics.ProgressEvent) { fn(ProgressEvent(ev)) }
	}
	return params
}

// Scenario returns the session's current snapshot.
func (s *PlannerSession) Scenario() *Scenario {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &Scenario{inner: s.cur}
}

// Plan (re-)plans the session's current snapshot, using the warm solver
// state accumulated by earlier re-plans.
func (s *PlannerSession) Plan(ctx context.Context) (*Plan, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.planLocked(ctx)
}

// Apply applies the deltas to the session's snapshot and re-plans the
// result. Application is atomic: on an invalid delta the session's snapshot
// is unchanged and no solve happens. On solver failure (e.g. cancellation)
// the snapshot HAS advanced — the deltas describe what happened in the
// field, which a failed solve does not undo — and a later Plan call re-plans
// it.
func (s *PlannerSession) Apply(ctx context.Context, deltas ...Delta) (*Plan, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	inner := make([]scenario.Delta, len(deltas))
	for i, d := range deltas {
		inner[i] = d.inner
	}
	next, err := s.cur.Apply(inner...)
	if err != nil {
		return nil, err
	}
	s.cur = next
	return s.planLocked(ctx)
}

// planLocked solves the current snapshot; the caller holds s.mu.
func (s *PlannerSession) planLocked(ctx context.Context) (*Plan, error) {
	var solver heuristics.Solver
	if s.isp != nil {
		solver = s.isp
	} else {
		var err error
		solver, err = heuristics.New(string(s.planner.cfg.alg), s.planner.params())
		if err != nil {
			return nil, err
		}
	}
	inner, err := solver.Solve(ctx, s.cur)
	if err != nil {
		return nil, err
	}
	s.plans++
	plan := &Plan{inner: inner, scen: s.cur}
	if s.planner.cfg.schedule {
		stages, err := buildStages(s.cur, inner, s.planner.cfg.stageBudget)
		if err != nil {
			return nil, err
		}
		plan.stages = stages
	}
	return plan, nil
}

// Stats returns a snapshot of the session counters.
func (s *PlannerSession) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SessionStats{Plans: s.plans, Warm: s.isp != nil}
	if s.isp != nil {
		cs := s.isp.Stats()
		st.SplitHits = cs.SplitHits
		st.SplitMisses = cs.SplitMisses
		st.RoutabilityHits = cs.RoutabilityHits
		st.RoutabilityMisses = cs.RoutabilityMisses
	}
	return st
}
