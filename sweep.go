package netrecovery

import (
	"context"

	"netrecovery/internal/sweep"
)

// The sweep engine runs a declarative grid of recovery experiments —
// topologies × disruption models × demand configurations × algorithms ×
// seeds — concurrently on a bounded worker pool with deterministic per-job
// seeding, and aggregates the results into per-group statistics with JSON
// and CSV emitters. The types below alias the engine's spec and report
// types so callers outside the module can use them through the facade.
type (
	// SweepSpec declares the grid. See the field documentation of the
	// aliased type for every knob (workers, per-job timeout, solver limits).
	SweepSpec = sweep.Spec
	// SweepTopology, SweepDisruption and SweepDemand are the grid's
	// dimension declarations.
	SweepTopology   = sweep.Topology
	SweepDisruption = sweep.Disruption
	SweepDemand     = sweep.Demand
	// SweepReport is the aggregated outcome; it offers WriteJSON, WriteCSV
	// and a deterministic Fingerprint.
	SweepReport = sweep.Report
	// SweepJobResult is the per-job outcome streamed to OnResult observers
	// and embedded in the report.
	SweepJobResult = sweep.JobResult
)

// Topology, disruption and placement kinds understood by SweepSpec.
const (
	SweepTopoBellCanada = sweep.TopoBellCanada
	SweepTopoGrid       = sweep.TopoGrid
	SweepTopoErdosRenyi = sweep.TopoErdosRenyi
	SweepTopoCAIDA      = sweep.TopoCAIDA

	SweepDisruptComplete   = sweep.DisruptComplete
	SweepDisruptGeographic = sweep.DisruptGeographic
	SweepDisruptRandom     = sweep.DisruptRandom
	SweepDisruptEdges      = sweep.DisruptEdges

	SweepPlaceFarApart = sweep.PlaceFarApart
	SweepPlaceUniform  = sweep.PlaceUniform
)

// SweepSeeds returns n consecutive seeds starting at base, a convenience for
// filling SweepSpec.Seeds.
func SweepSeeds(base int64, n int) []int64 { return sweep.SeedRange(base, n) }

// Sweep expands the spec into jobs and runs them on the engine's worker
// pool. Cancelling the context stops the remaining jobs promptly and returns
// the context's error; individual job failures (solver errors, per-job
// timeouts, panics) are isolated and reported per group instead of aborting
// the sweep. Results are deterministic for fixed seeds regardless of the
// worker count, with one caveat: OPT's branch and bound stops on a
// wall-clock time limit, so when that limit binds, the incumbent it returns
// can vary with CPU contention.
func Sweep(ctx context.Context, spec SweepSpec) (*SweepReport, error) {
	return sweep.Run(ctx, spec)
}
