package netrecovery_test

import (
	"reflect"
	"sort"
	"testing"

	"netrecovery"
)

// TestDisruptionReportDeterministic pins that every ID slice a
// DisruptionReport (or a Scenario) emits is sorted ascending and identical
// across repeated identically-seeded runs — never map-iteration order.
// Fingerprints and the JSON wire goldens depend on this.
func TestDisruptionReportDeterministic(t *testing.T) {
	build := func() (*netrecovery.Network, netrecovery.DisruptionReport) {
		net := netrecovery.BellCanada()
		rep := net.ApplyGeographicDisruption(netrecovery.DisruptionConfig{Variance: 60, Seed: 11})
		net.ApplyRandomDisruption(0.1, 0.1, 13)
		return net, rep
	}

	net, rep := build()
	assertSorted := func(name string, ids []int) {
		t.Helper()
		if !sort.IntsAreSorted(ids) {
			t.Fatalf("%s not sorted: %v", name, ids)
		}
	}
	assertSorted("apply report NodeIDs", rep.NodeIDs)
	assertSorted("apply report LinkIDs", rep.LinkIDs)
	if len(rep.NodeIDs) != rep.BrokenNodes || len(rep.LinkIDs) != rep.BrokenEdges {
		t.Fatalf("report counts disagree with ID slices: %+v", rep)
	}

	full := net.Broken()
	assertSorted("network report NodeIDs", full.NodeIDs)
	assertSorted("network report LinkIDs", full.LinkIDs)

	sc := net.Snapshot()
	scRep := sc.Broken()
	assertSorted("scenario report NodeIDs", scRep.NodeIDs)
	assertSorted("scenario report LinkIDs", scRep.LinkIDs)
	if !reflect.DeepEqual(scRep, full) {
		t.Fatalf("snapshot report differs from network report:\n%+v\nvs\n%+v", scRep, full)
	}
	if !reflect.DeepEqual(scRep.NodeIDs, sc.BrokenNodeIDs()) || !reflect.DeepEqual(scRep.LinkIDs, sc.BrokenLinkIDs()) {
		t.Fatalf("report ID slices disagree with BrokenNodeIDs/BrokenLinkIDs")
	}

	// Identical seeds, identical output — across fresh networks, whose map
	// internals (and therefore iteration order) differ run to run.
	for i := 0; i < 10; i++ {
		net2, rep2 := build()
		if !reflect.DeepEqual(rep2, rep) {
			t.Fatalf("run %d: apply report differs:\n%+v\nvs\n%+v", i, rep2, rep)
		}
		if got := net2.Broken(); !reflect.DeepEqual(got, full) {
			t.Fatalf("run %d: network report differs:\n%+v\nvs\n%+v", i, got, full)
		}
	}
}
