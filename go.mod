module netrecovery

go 1.24
