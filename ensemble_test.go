package netrecovery

import (
	"context"
	"encoding/json"
	"testing"
)

// quickBell is the Quick-profile Bell-Canada network with four far-apart
// demand pairs and an intact supply graph; the sampler provides the damage.
func quickBell(t *testing.T) *Scenario {
	t.Helper()
	net := BellCanada()
	if err := net.AddFarApartDemands(4, 10, 1); err != nil {
		t.Fatal(err)
	}
	return net.Snapshot()
}

func TestRunEnsembleFacade(t *testing.T) {
	var last EnsembleProgress
	cache := NewPlanCache(PlanCacheConfig{})
	spec := EnsembleSpec{
		Scenario: quickBell(t),
		Sampler: EnsembleSampler{
			Model:    EnsembleCascade,
			SeedProb: 0.05, Spread: 0.3, EdgeProb: 0.4,
		},
		Samples:    50,
		Seed:       9,
		FastISP:    true,
		Cache:      cache,
		OnProgress: func(p EnsembleProgress) { last = p },
	}
	rep, err := RunEnsemble(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples != 50 || rep.Unique < 1 || rep.Failures != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Solves != rep.Unique || rep.CacheHits != 0 {
		t.Fatalf("fresh cache: solves=%d hits=%d unique=%d", rep.Solves, rep.CacheHits, rep.Unique)
	}
	if last.Done != 50 || last.Total != 50 {
		t.Fatalf("final progress = %+v", last)
	}
	if s := cache.Stats(); s.Entries != rep.Unique {
		t.Fatalf("cache entries = %d, want %d", s.Entries, rep.Unique)
	}

	// Re-running through the same cache answers every unique scenario
	// without a solve, and leaves every statistic byte-identical.
	again, err := RunEnsemble(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if again.Solves != 0 || again.CacheHits != again.Unique || again.HitRatio != 1 {
		t.Fatalf("warm cache: %+v", again)
	}
	a, _ := json.Marshal(rep.SatisfiedRatio)
	b, _ := json.Marshal(again.SatisfiedRatio)
	if string(a) != string(b) {
		t.Error("warm re-run changed the aggregated statistics")
	}

	if _, err := RunEnsemble(context.Background(), EnsembleSpec{}); err == nil {
		t.Error("nil scenario must be rejected")
	}
}
