// Package netrecovery is the public facade of the network-recovery library,
// a reproduction of "Network recovery after massive failures" (Bartolini,
// Ciavarella, La Porta, Silvestri — DSN 2016).
//
// The library answers one question: after a large-scale disruption of a
// communication network, which broken nodes and links should be repaired so
// that a set of mission-critical demand flows can be routed, at minimum
// repair cost? The primary algorithm is ISP (Iterative Split and Prune); the
// package also exposes the paper's baselines (SRT, GRD-COM, GRD-NC, OPT,
// ALL) behind a uniform interface.
//
// Typical usage:
//
//	net := netrecovery.BellCanada()                  // 1. build a network
//	net.AddDemand("Victoria", "Halifax", 10)         // 2. add demand flows
//	net.ApplyGeographicDisruption(netrecovery.DisruptionConfig{Variance: 40, Seed: 1})
//	sc := net.Snapshot()                             // 3. freeze a Scenario
//	planner := netrecovery.NewPlanner(               // 4. configure a Planner
//		netrecovery.WithAlgorithm(netrecovery.ISP),
//	)
//	plan, err := planner.Plan(ctx, sc)               // 5. solve
//	if err != nil { ... }
//	fmt.Println(plan.Summary())
//
// A Network is the mutable builder; Snapshot freezes it into an immutable
// Scenario that is safe to share across goroutines and to solve while the
// source network keeps mutating. A Planner is configured once with
// functional options (WithAlgorithm, WithFastISP, WithOPTBudget,
// WithParallelism, WithProgress, WithSchedule, WithCache) and reused for
// any number of concurrent Plan calls. Additional algorithms plug in
// through RegisterSolver.
//
// Scenarios are content-addressable: Fingerprint returns a stable 256-bit
// hash of everything a solver reads, and WithCache(NewPlanCache(...))
// deduplicates Plan calls by that hash — the same machinery behind the
// cmd/nrserved HTTP daemon, which serves plans over a coalescing
// content-addressed cache.
//
// # API stability and deprecation policy
//
// The Scenario / Planner surface is the stable API. Older entry points
// (Recover, RecoverWithOptions, RecoverContext, Plan.ScheduleProgressively)
// remain as thin shims over the Planner, are marked Deprecated, produce
// identical plans, and will not be removed before a v2; new code should not
// use them.
//
// The heavy lifting lives in the internal packages; this package only wires
// them together behind a stable API.
package netrecovery

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"netrecovery/internal/demand"
	"netrecovery/internal/disruption"
	"netrecovery/internal/graph"
	"netrecovery/internal/heuristics"
	"netrecovery/internal/scenario"
	"netrecovery/internal/topology"
)

// Algorithm selects a recovery algorithm.
type Algorithm string

// Available algorithms.
const (
	// ISP is the paper's Iterative Split and Prune heuristic (recommended).
	ISP Algorithm = "ISP"
	// OPT is the exact MILP solved by branch and bound (small instances).
	OPT Algorithm = "OPT"
	// SRT is the shortest-path repair heuristic.
	SRT Algorithm = "SRT"
	// GreedyCommit and GreedyNoCommit are the knapsack-style heuristics.
	GreedyCommit   Algorithm = "GRD-COM"
	GreedyNoCommit Algorithm = "GRD-NC"
	// All repairs every broken element.
	All Algorithm = "ALL"
)

// Algorithms lists every available algorithm in presentation order.
func Algorithms() []Algorithm {
	out := make([]Algorithm, 0, len(heuristics.Names()))
	for _, n := range heuristics.Names() {
		out = append(out, Algorithm(n))
	}
	return out
}

// Network is a supply network together with its demand and disruption
// state: the mutable builder of Scenario snapshots. Build one with New or
// one of the topology constructors, add demands, apply a disruption, then
// call Snapshot and hand the scenario to a Planner.
//
// A Network is safe for concurrent use: mutators and snapshotting are
// serialised by an internal lock. Solvers never see the live network — they
// operate on immutable snapshots.
type Network struct {
	mu        sync.RWMutex
	graph     *graph.Graph
	demands   *demand.Graph
	broken    disruption.Disruption
	nodeNames map[string]graph.NodeID
}

// New returns an empty network.
func New() *Network {
	return &Network{
		graph:     graph.New(0, 0),
		demands:   demand.New(),
		broken:    disruption.NewDisruption(),
		nodeNames: make(map[string]graph.NodeID),
	}
}

// wrap builds a Network around an existing supply graph.
func wrap(g *graph.Graph) *Network {
	n := &Network{
		graph:     g,
		demands:   demand.New(),
		broken:    disruption.NewDisruption(),
		nodeNames: make(map[string]graph.NodeID, g.NumNodes()),
	}
	for _, node := range g.Nodes() {
		if node.Name != "" {
			n.nodeNames[node.Name] = node.ID
		}
	}
	return n
}

// BellCanada returns the 48-node Bell-Canada-like topology used in the
// paper's first evaluation scenario.
func BellCanada() *Network { return wrap(topology.BellCanada()) }

// Grid returns a rows x cols grid network with the given uniform link
// capacity and unit repair costs.
func Grid(rows, cols int, capacity float64) (*Network, error) {
	g, err := topology.Grid(rows, cols, topology.DefaultConfig(capacity))
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// ErdosRenyi returns a random G(n, p) network with the given uniform link
// capacity and unit repair costs.
func ErdosRenyi(n int, p float64, capacity float64, seed int64) (*Network, error) {
	g, err := topology.ErdosRenyi(n, p, topology.DefaultConfig(capacity), rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// CAIDALike returns an 825-node router-level topology mimicking the CAIDA
// AS28717 giant component used in the paper's third scenario.
func CAIDALike(capacity float64, seed int64) *Network {
	return wrap(topology.CAIDALike(topology.DefaultConfig(capacity), rand.New(rand.NewSource(seed))))
}

// AddNode adds a node and returns its ID. Names must be unique when used
// with the name-based helpers.
func (n *Network) AddNode(name string, x, y, repairCost float64) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	id := n.graph.AddNode(name, x, y, repairCost)
	if name != "" {
		n.nodeNames[name] = id
	}
	return int(id)
}

// AddLink adds an undirected link between two node IDs.
func (n *Network) AddLink(from, to int, capacity, repairCost float64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, err := n.graph.AddEdge(graph.NodeID(from), graph.NodeID(to), capacity, repairCost)
	return err
}

// NumNodes and NumLinks report the supply-network size.
func (n *Network) NumNodes() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.graph.NumNodes()
}

// NumLinks reports the number of links of the supply network.
func (n *Network) NumLinks() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.graph.NumEdges()
}

// NodeID resolves a node name to its ID.
func (n *Network) NodeID(name string) (int, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	id, ok := n.nodeNames[name]
	return int(id), ok
}

// AddDemand adds a demand flow between two named nodes.
func (n *Network) AddDemand(source, target string, flowUnits float64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.nodeNames[source]
	if !ok {
		return fmt.Errorf("netrecovery: unknown node %q", source)
	}
	t, ok := n.nodeNames[target]
	if !ok {
		return fmt.Errorf("netrecovery: unknown node %q", target)
	}
	_, err := n.demands.Add(s, t, flowUnits)
	return err
}

// AddDemandByID adds a demand flow between two node IDs.
func (n *Network) AddDemandByID(source, target int, flowUnits float64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, err := n.demands.Add(graph.NodeID(source), graph.NodeID(target), flowUnits)
	return err
}

// AddFarApartDemands adds numPairs demands of flowUnits each between nodes
// at hop distance of at least half the network diameter (the paper's demand
// selection rule).
func (n *Network) AddFarApartDemands(numPairs int, flowUnits float64, seed int64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	dg, err := demand.GenerateFarApartPairs(n.graph, numPairs, flowUnits, rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}
	for _, p := range dg.All() {
		if _, err := n.demands.Add(p.Source, p.Target, p.Flow); err != nil {
			return err
		}
	}
	return nil
}

// TotalDemand returns the total demand flow added so far.
func (n *Network) TotalDemand() float64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.demands.TotalFlow()
}

// Epicenter pins the centre of a geographic disruption to explicit
// coordinates — including the origin (0, 0), which the legacy
// EpicenterX/EpicenterY fields cannot express.
type Epicenter struct {
	X, Y float64
}

// DisruptionConfig parameterises ApplyGeographicDisruption.
type DisruptionConfig struct {
	// Variance of the bi-variate Gaussian failure probability (larger =
	// wider destruction). Required.
	Variance float64
	// Epicenter, when non-nil, pins the epicentre to explicit coordinates;
	// nil means the network barycentre (the paper's setting). Unlike the
	// legacy EpicenterX/Y fields it can express an epicentre at the origin.
	Epicenter *Epicenter
	// EpicenterX/Y override the epicentre when Epicenter is nil; when both
	// are zero the network barycentre is used, which makes a real epicentre
	// at (0, 0) unexpressible.
	//
	// Deprecated: set Epicenter instead.
	EpicenterX, EpicenterY float64
	// PeakProbability is the failure probability at the epicentre (default 1).
	PeakProbability float64
	// Seed drives the random draws.
	Seed int64
}

// ApplyGeographicDisruption breaks nodes and links according to a
// geographically-correlated bi-variate Gaussian failure model.
func (n *Network) ApplyGeographicDisruption(cfg DisruptionConfig) DisruptionReport {
	gcfg := disruption.GeographicConfig{
		Variance:        cfg.Variance,
		PeakProbability: cfg.PeakProbability,
	}
	switch {
	case cfg.Epicenter != nil:
		gcfg.EpicenterX, gcfg.EpicenterY = cfg.Epicenter.X, cfg.Epicenter.Y
	case cfg.EpicenterX == 0 && cfg.EpicenterY == 0:
		gcfg.Auto = true
	default:
		gcfg.EpicenterX, gcfg.EpicenterY = cfg.EpicenterX, cfg.EpicenterY
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	d := disruption.Geographic(n.graph, gcfg, rand.New(rand.NewSource(cfg.Seed)))
	n.mergeDisruption(d)
	return disruptionReport(d.Nodes, d.Edges)
}

// ApplyCompleteDestruction breaks every node and link.
func (n *Network) ApplyCompleteDestruction() DisruptionReport {
	n.mu.Lock()
	defer n.mu.Unlock()
	d := disruption.Complete(n.graph)
	n.mergeDisruption(d)
	return disruptionReport(d.Nodes, d.Edges)
}

// ApplyRandomDisruption breaks each node / link independently with the given
// probabilities.
func (n *Network) ApplyRandomDisruption(pNode, pEdge float64, seed int64) DisruptionReport {
	n.mu.Lock()
	defer n.mu.Unlock()
	d := disruption.Random(n.graph, pNode, pEdge, rand.New(rand.NewSource(seed)))
	n.mergeDisruption(d)
	return disruptionReport(d.Nodes, d.Edges)
}

// BreakNode marks a single node as broken.
func (n *Network) BreakNode(id int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.broken.Nodes[graph.NodeID(id)] = true
}

// BreakLink marks a single link as broken.
func (n *Network) BreakLink(id int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.broken.Edges[graph.EdgeID(id)] = true
}

// mergeDisruption folds d into the broken sets; callers hold n.mu.
func (n *Network) mergeDisruption(d disruption.Disruption) {
	for v := range d.Nodes {
		n.broken.Nodes[v] = true
	}
	for e := range d.Edges {
		n.broken.Edges[e] = true
	}
}

// DisruptionReport summarises a disruption: the broken-element counts and
// the broken element IDs. The ID slices are always sorted ascending —
// never map-iteration order — so reports are deterministic and safe to
// serialise, diff and use in golden tests.
//
// Note: the ID slices make the struct non-comparable with ==; compare
// reports with reflect.DeepEqual (or compare the count fields directly).
type DisruptionReport struct {
	BrokenNodes int
	BrokenEdges int
	// NodeIDs and LinkIDs are the broken element IDs in ascending order.
	NodeIDs []int
	LinkIDs []int
}

// disruptionReport builds a report from broken sets with sorted ID slices.
func disruptionReport(nodes map[graph.NodeID]bool, edges map[graph.EdgeID]bool) DisruptionReport {
	rep := DisruptionReport{
		BrokenNodes: len(nodes),
		BrokenEdges: len(edges),
		NodeIDs:     make([]int, 0, len(nodes)),
		LinkIDs:     make([]int, 0, len(edges)),
	}
	for v := range nodes {
		rep.NodeIDs = append(rep.NodeIDs, int(v))
	}
	for e := range edges {
		rep.LinkIDs = append(rep.LinkIDs, int(e))
	}
	sort.Ints(rep.NodeIDs)
	sort.Ints(rep.LinkIDs)
	return rep
}

// Broken returns the current broken nodes and links.
func (n *Network) Broken() DisruptionReport {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return disruptionReport(n.broken.Nodes, n.broken.Edges)
}

// RecoverOptions tune a Recover call.
//
// Deprecated: configure a Planner with functional options (WithFastISP,
// WithOPTBudget) instead.
type RecoverOptions struct {
	// OPTTimeLimit / OPTMaxNodes bound the branch-and-bound search of the
	// OPT algorithm (defaults: 120s / 4000 nodes).
	OPTTimeLimit time.Duration
	OPTMaxNodes  int
	// FastISP switches ISP to its greedy split mode, recommended for
	// networks with hundreds of nodes.
	FastISP bool
}

// plannerOptions translates legacy RecoverOptions into Planner options.
func (opts RecoverOptions) plannerOptions(alg Algorithm) []PlannerOption {
	popts := []PlannerOption{WithAlgorithm(alg)}
	if opts.FastISP {
		popts = append(popts, WithFastISP())
	}
	if opts.OPTTimeLimit != 0 || opts.OPTMaxNodes != 0 {
		popts = append(popts, WithOPTBudget(opts.OPTTimeLimit, opts.OPTMaxNodes))
	}
	return popts
}

// Recover runs the selected algorithm on a snapshot of the current network
// state and returns its repair plan.
//
// Deprecated: use NewPlanner(WithAlgorithm(alg)).Plan(ctx, net.Snapshot()).
func (n *Network) Recover(alg Algorithm) (*Plan, error) {
	return n.RecoverContext(context.Background(), alg, RecoverOptions{})
}

// RecoverWithOptions runs the selected algorithm with explicit options.
//
// Deprecated: use a Planner configured with the equivalent functional
// options (WithFastISP, WithOPTBudget).
func (n *Network) RecoverWithOptions(alg Algorithm, opts RecoverOptions) (*Plan, error) {
	return n.RecoverContext(context.Background(), alg, opts)
}

// RecoverContext runs the selected algorithm with explicit options under a
// context: cancelling the context (or letting its deadline fire) stops the
// solver promptly and returns the context's error.
//
// Deprecated: use Planner.Plan, which takes a context. This shim snapshots
// the network and delegates to a Planner; it produces identical plans.
func (n *Network) RecoverContext(ctx context.Context, alg Algorithm, opts RecoverOptions) (*Plan, error) {
	return NewPlanner(opts.plannerOptions(alg)...).Plan(ctx, n.Snapshot())
}

// Plan is a recovery plan produced by Planner.Plan.
type Plan struct {
	inner *scenario.Plan
	scen  *scenario.Scenario
	// stages is the progressive timeline computed when the Planner was
	// configured with WithSchedule.
	stages []RecoveryStage
	// degradation annotates a plan produced under WithDeadline.
	degradation *Degradation
}

// Algorithm returns the name of the algorithm that produced the plan.
func (p *Plan) Algorithm() string { return p.inner.Solver }

// Degradation reports how the plan was obtained when the Planner ran under
// WithDeadline: which fallback-chain stage served it and how each stage
// spent its slice of the budget. It returns nil for Planners without a
// deadline (the chain never ran).
func (p *Plan) Degradation() *Degradation { return p.degradation }

// RepairedNodes returns the IDs of the nodes to repair, and RepairedLinks
// the IDs of the links to repair.
func (p *Plan) RepairedNodes() []int {
	out := make([]int, 0, len(p.inner.RepairedNodes))
	for v := range p.inner.RepairedNodes {
		out = append(out, int(v))
	}
	sort.Ints(out)
	return out
}

// RepairedLinks returns the IDs of the links to repair.
func (p *Plan) RepairedLinks() []int {
	out := make([]int, 0, len(p.inner.RepairedEdges))
	for e := range p.inner.RepairedEdges {
		out = append(out, int(e))
	}
	sort.Ints(out)
	return out
}

// Repairs returns the number of node repairs, link repairs and their total.
func (p *Plan) Repairs() (nodes, links, total int) { return p.inner.NumRepairs() }

// Cost returns the total repair cost of the plan.
func (p *Plan) Cost() float64 { return p.inner.RepairCost(p.scen) }

// SatisfiedDemandRatio returns the fraction of the demand the plan routes
// (1 means no demand loss).
func (p *Plan) SatisfiedDemandRatio() float64 { return p.inner.SatisfactionRatio() }

// Runtime returns the wall-clock time the algorithm took.
func (p *Plan) Runtime() time.Duration { return p.inner.Runtime }

// Optimal reports whether the plan is provably optimal (OPT only).
func (p *Plan) Optimal() bool { return p.inner.Optimal }

// Verify checks the plan against the network state (capacity, conservation,
// only-broken-elements-repaired). A nil error means the plan is valid.
func (p *Plan) Verify() error { return scenario.VerifyPlan(p.scen, p.inner) }

// Summary returns a one-line human-readable description of the plan.
func (p *Plan) Summary() string {
	nodes, links, total := p.Repairs()
	return fmt.Sprintf("%s: repair %d nodes + %d links (%d total, cost %.1f), %.1f%% of demand served in %v",
		p.Algorithm(), nodes, links, total, p.Cost(), 100*p.SatisfiedDemandRatio(), p.Runtime().Round(time.Millisecond))
}
