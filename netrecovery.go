// Package netrecovery is the public facade of the network-recovery library,
// a reproduction of "Network recovery after massive failures" (Bartolini,
// Ciavarella, La Porta, Silvestri — DSN 2016).
//
// The library answers one question: after a large-scale disruption of a
// communication network, which broken nodes and links should be repaired so
// that a set of mission-critical demand flows can be routed, at minimum
// repair cost? The primary algorithm is ISP (Iterative Split and Prune); the
// package also exposes the paper's baselines (SRT, GRD-COM, GRD-NC, OPT,
// ALL) behind a uniform interface.
//
// Typical usage:
//
//	net := netrecovery.BellCanada()
//	net.AddDemand("Victoria", "Halifax", 10)
//	net.ApplyGeographicDisruption(netrecovery.DisruptionConfig{Variance: 40, Seed: 1})
//	plan, err := net.Recover(netrecovery.ISP)
//	if err != nil { ... }
//	fmt.Println(plan.Summary())
//
// The heavy lifting lives in the internal packages; this package only wires
// them together behind a stable API.
package netrecovery

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"netrecovery/internal/core"
	"netrecovery/internal/demand"
	"netrecovery/internal/disruption"
	"netrecovery/internal/flow"
	"netrecovery/internal/graph"
	"netrecovery/internal/heuristics"
	"netrecovery/internal/scenario"
	"netrecovery/internal/topology"
)

// Algorithm selects a recovery algorithm.
type Algorithm string

// Available algorithms.
const (
	// ISP is the paper's Iterative Split and Prune heuristic (recommended).
	ISP Algorithm = "ISP"
	// OPT is the exact MILP solved by branch and bound (small instances).
	OPT Algorithm = "OPT"
	// SRT is the shortest-path repair heuristic.
	SRT Algorithm = "SRT"
	// GreedyCommit and GreedyNoCommit are the knapsack-style heuristics.
	GreedyCommit   Algorithm = "GRD-COM"
	GreedyNoCommit Algorithm = "GRD-NC"
	// All repairs every broken element.
	All Algorithm = "ALL"
)

// Algorithms lists every available algorithm in presentation order.
func Algorithms() []Algorithm {
	out := make([]Algorithm, 0, len(heuristics.Names()))
	for _, n := range heuristics.Names() {
		out = append(out, Algorithm(n))
	}
	return out
}

// Network is a supply network together with its demand and disruption state.
// Build one with New or one of the topology constructors, add demands,
// apply a disruption and call Recover.
type Network struct {
	graph     *graph.Graph
	demands   *demand.Graph
	broken    disruption.Disruption
	nodeNames map[string]graph.NodeID
}

// New returns an empty network.
func New() *Network {
	return &Network{
		graph:     graph.New(0, 0),
		demands:   demand.New(),
		broken:    disruption.NewDisruption(),
		nodeNames: make(map[string]graph.NodeID),
	}
}

// wrap builds a Network around an existing supply graph.
func wrap(g *graph.Graph) *Network {
	n := &Network{
		graph:     g,
		demands:   demand.New(),
		broken:    disruption.NewDisruption(),
		nodeNames: make(map[string]graph.NodeID, g.NumNodes()),
	}
	for _, node := range g.Nodes() {
		if node.Name != "" {
			n.nodeNames[node.Name] = node.ID
		}
	}
	return n
}

// BellCanada returns the 48-node Bell-Canada-like topology used in the
// paper's first evaluation scenario.
func BellCanada() *Network { return wrap(topology.BellCanada()) }

// Grid returns a rows x cols grid network with the given uniform link
// capacity and unit repair costs.
func Grid(rows, cols int, capacity float64) (*Network, error) {
	g, err := topology.Grid(rows, cols, topology.DefaultConfig(capacity))
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// ErdosRenyi returns a random G(n, p) network with the given uniform link
// capacity and unit repair costs.
func ErdosRenyi(n int, p float64, capacity float64, seed int64) (*Network, error) {
	g, err := topology.ErdosRenyi(n, p, topology.DefaultConfig(capacity), rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	return wrap(g), nil
}

// CAIDALike returns an 825-node router-level topology mimicking the CAIDA
// AS28717 giant component used in the paper's third scenario.
func CAIDALike(capacity float64, seed int64) *Network {
	return wrap(topology.CAIDALike(topology.DefaultConfig(capacity), rand.New(rand.NewSource(seed))))
}

// AddNode adds a node and returns its ID. Names must be unique when used
// with the name-based helpers.
func (n *Network) AddNode(name string, x, y, repairCost float64) int {
	id := n.graph.AddNode(name, x, y, repairCost)
	if name != "" {
		n.nodeNames[name] = id
	}
	return int(id)
}

// AddLink adds an undirected link between two node IDs.
func (n *Network) AddLink(from, to int, capacity, repairCost float64) error {
	_, err := n.graph.AddEdge(graph.NodeID(from), graph.NodeID(to), capacity, repairCost)
	return err
}

// NumNodes and NumLinks report the supply-network size.
func (n *Network) NumNodes() int { return n.graph.NumNodes() }

// NumLinks reports the number of links of the supply network.
func (n *Network) NumLinks() int { return n.graph.NumEdges() }

// NodeID resolves a node name to its ID.
func (n *Network) NodeID(name string) (int, bool) {
	id, ok := n.nodeNames[name]
	return int(id), ok
}

// AddDemand adds a demand flow between two named nodes.
func (n *Network) AddDemand(source, target string, flowUnits float64) error {
	s, ok := n.nodeNames[source]
	if !ok {
		return fmt.Errorf("netrecovery: unknown node %q", source)
	}
	t, ok := n.nodeNames[target]
	if !ok {
		return fmt.Errorf("netrecovery: unknown node %q", target)
	}
	_, err := n.demands.Add(s, t, flowUnits)
	return err
}

// AddDemandByID adds a demand flow between two node IDs.
func (n *Network) AddDemandByID(source, target int, flowUnits float64) error {
	_, err := n.demands.Add(graph.NodeID(source), graph.NodeID(target), flowUnits)
	return err
}

// AddFarApartDemands adds numPairs demands of flowUnits each between nodes
// at hop distance of at least half the network diameter (the paper's demand
// selection rule).
func (n *Network) AddFarApartDemands(numPairs int, flowUnits float64, seed int64) error {
	dg, err := demand.GenerateFarApartPairs(n.graph, numPairs, flowUnits, rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}
	for _, p := range dg.All() {
		if _, err := n.demands.Add(p.Source, p.Target, p.Flow); err != nil {
			return err
		}
	}
	return nil
}

// TotalDemand returns the total demand flow added so far.
func (n *Network) TotalDemand() float64 { return n.demands.TotalFlow() }

// DisruptionConfig parameterises ApplyGeographicDisruption.
type DisruptionConfig struct {
	// Variance of the bi-variate Gaussian failure probability (larger =
	// wider destruction). Required.
	Variance float64
	// EpicenterX/Y override the epicentre; when both are zero the network
	// barycentre is used.
	EpicenterX, EpicenterY float64
	// PeakProbability is the failure probability at the epicentre (default 1).
	PeakProbability float64
	// Seed drives the random draws.
	Seed int64
}

// ApplyGeographicDisruption breaks nodes and links according to a
// geographically-correlated bi-variate Gaussian failure model.
func (n *Network) ApplyGeographicDisruption(cfg DisruptionConfig) DisruptionReport {
	auto := cfg.EpicenterX == 0 && cfg.EpicenterY == 0
	d := disruption.Geographic(n.graph, disruption.GeographicConfig{
		EpicenterX:      cfg.EpicenterX,
		EpicenterY:      cfg.EpicenterY,
		Auto:            auto,
		Variance:        cfg.Variance,
		PeakProbability: cfg.PeakProbability,
	}, rand.New(rand.NewSource(cfg.Seed)))
	n.mergeDisruption(d)
	return DisruptionReport{BrokenNodes: len(d.Nodes), BrokenEdges: len(d.Edges)}
}

// ApplyCompleteDestruction breaks every node and link.
func (n *Network) ApplyCompleteDestruction() DisruptionReport {
	d := disruption.Complete(n.graph)
	n.mergeDisruption(d)
	return DisruptionReport{BrokenNodes: len(d.Nodes), BrokenEdges: len(d.Edges)}
}

// ApplyRandomDisruption breaks each node / link independently with the given
// probabilities.
func (n *Network) ApplyRandomDisruption(pNode, pEdge float64, seed int64) DisruptionReport {
	d := disruption.Random(n.graph, pNode, pEdge, rand.New(rand.NewSource(seed)))
	n.mergeDisruption(d)
	return DisruptionReport{BrokenNodes: len(d.Nodes), BrokenEdges: len(d.Edges)}
}

// BreakNode marks a single node as broken.
func (n *Network) BreakNode(id int) { n.broken.Nodes[graph.NodeID(id)] = true }

// BreakLink marks a single link as broken.
func (n *Network) BreakLink(id int) { n.broken.Edges[graph.EdgeID(id)] = true }

func (n *Network) mergeDisruption(d disruption.Disruption) {
	for v := range d.Nodes {
		n.broken.Nodes[v] = true
	}
	for e := range d.Edges {
		n.broken.Edges[e] = true
	}
}

// DisruptionReport summarises an applied disruption.
type DisruptionReport struct {
	BrokenNodes int
	BrokenEdges int
}

// Broken returns the current number of broken nodes and links.
func (n *Network) Broken() DisruptionReport {
	return DisruptionReport{BrokenNodes: len(n.broken.Nodes), BrokenEdges: len(n.broken.Edges)}
}

// RecoverOptions tune a Recover call.
type RecoverOptions struct {
	// OPTTimeLimit / OPTMaxNodes bound the branch-and-bound search of the
	// OPT algorithm (defaults: 120s / 4000 nodes).
	OPTTimeLimit time.Duration
	OPTMaxNodes  int
	// FastISP switches ISP to its greedy split mode, recommended for
	// networks with hundreds of nodes.
	FastISP bool
}

// Recover runs the selected algorithm on the current network state and
// returns its repair plan.
func (n *Network) Recover(alg Algorithm) (*Plan, error) {
	return n.RecoverContext(context.Background(), alg, RecoverOptions{})
}

// RecoverWithOptions runs the selected algorithm with explicit options.
func (n *Network) RecoverWithOptions(alg Algorithm, opts RecoverOptions) (*Plan, error) {
	return n.RecoverContext(context.Background(), alg, opts)
}

// RecoverContext runs the selected algorithm with explicit options under a
// context: cancelling the context (or letting its deadline fire) stops the
// solver promptly and returns the context's error.
func (n *Network) RecoverContext(ctx context.Context, alg Algorithm, opts RecoverOptions) (*Plan, error) {
	sc := n.scenario()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	var solver heuristics.Solver
	switch alg {
	case ISP:
		ispOpts := core.Options{}
		if opts.FastISP {
			ispOpts.SplitMode = core.SplitGreedy
			ispOpts.Routability = flow.Options{Mode: flow.ModeAuto}
		}
		solver = &heuristics.ISPSolver{Options: ispOpts}
	case OPT:
		solver = &heuristics.Opt{MaxNodes: opts.OPTMaxNodes, TimeLimit: opts.OPTTimeLimit}
	default:
		var err error
		solver, err = heuristics.New(string(alg))
		if err != nil {
			return nil, err
		}
	}
	plan, err := solver.Solve(ctx, sc)
	if err != nil {
		return nil, err
	}
	return &Plan{inner: plan, scen: sc}, nil
}

// scenario builds the internal scenario snapshot of the network state.
func (n *Network) scenario() *scenario.Scenario {
	return &scenario.Scenario{
		Supply:      n.graph,
		Demand:      n.demands,
		BrokenNodes: n.broken.Nodes,
		BrokenEdges: n.broken.Edges,
	}
}

// Plan is a recovery plan produced by Recover.
type Plan struct {
	inner *scenario.Plan
	scen  *scenario.Scenario
}

// Algorithm returns the name of the algorithm that produced the plan.
func (p *Plan) Algorithm() string { return p.inner.Solver }

// RepairedNodes returns the IDs of the nodes to repair, and RepairedLinks
// the IDs of the links to repair.
func (p *Plan) RepairedNodes() []int {
	out := make([]int, 0, len(p.inner.RepairedNodes))
	for v := range p.inner.RepairedNodes {
		out = append(out, int(v))
	}
	sort.Ints(out)
	return out
}

// RepairedLinks returns the IDs of the links to repair.
func (p *Plan) RepairedLinks() []int {
	out := make([]int, 0, len(p.inner.RepairedEdges))
	for e := range p.inner.RepairedEdges {
		out = append(out, int(e))
	}
	sort.Ints(out)
	return out
}

// Repairs returns the number of node repairs, link repairs and their total.
func (p *Plan) Repairs() (nodes, links, total int) { return p.inner.NumRepairs() }

// Cost returns the total repair cost of the plan.
func (p *Plan) Cost() float64 { return p.inner.RepairCost(p.scen) }

// SatisfiedDemandRatio returns the fraction of the demand the plan routes
// (1 means no demand loss).
func (p *Plan) SatisfiedDemandRatio() float64 { return p.inner.SatisfactionRatio() }

// Runtime returns the wall-clock time the algorithm took.
func (p *Plan) Runtime() time.Duration { return p.inner.Runtime }

// Optimal reports whether the plan is provably optimal (OPT only).
func (p *Plan) Optimal() bool { return p.inner.Optimal }

// Verify checks the plan against the network state (capacity, conservation,
// only-broken-elements-repaired). A nil error means the plan is valid.
func (p *Plan) Verify() error { return scenario.VerifyPlan(p.scen, p.inner) }

// Summary returns a one-line human-readable description of the plan.
func (p *Plan) Summary() string {
	nodes, links, total := p.Repairs()
	return fmt.Sprintf("%s: repair %d nodes + %d links (%d total, cost %.1f), %.1f%% of demand served in %v",
		p.Algorithm(), nodes, links, total, p.Cost(), 100*p.SatisfiedDemandRatio(), p.Runtime().Round(time.Millisecond))
}
